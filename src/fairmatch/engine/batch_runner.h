// Batched/parallel execution over the Matcher engine seam.
//
// A production deployment of the paper's algorithms answers many
// independent preference-query batches concurrently, not one problem at
// a time. BatchRunner is that multi-problem Run path: it takes a vector
// of (matcher name, MatcherEnv) items — or generates K independent
// problem instances from seeds — and fans them out over T worker lanes
// on a shared ThreadPool (common/thread_pool.h).
//
// Determinism contract (enforced by tests/batch_test.cc): every item is
// an isolated run — its own problem, its own storage stack, its own
// ExecContext — so the per-item matching and the per-item deterministic
// counters (io_accesses, pairs, loops) are byte-identical at any thread
// count, and identical to a direct Matcher::Run() on the same inputs.
// Only wall-clock numbers (cpu_ms, throughput) vary with T.
//
// Concurrency contract: the layers underneath are NOT internally
// synchronized (the LRU buffer pools mutate on every read — see
// storage/buffer_pool.h); isolation, not locking, is what makes this
// safe. Caller-assembled items must therefore not share any mutable
// state across items: no shared tree over a PagedNodeStore, no shared
// DiskFunctionStore, no shared ExecContext. Immutable inputs (the
// AssignmentProblem, a tree over a MemNodeStore — provided no matcher
// mutates it) may be shared by read-only matchers; see the per-layer
// notes in rtree/node_store.h.
#ifndef FAIRMATCH_ENGINE_BATCH_RUNNER_H_
#define FAIRMATCH_ENGINE_BATCH_RUNNER_H_

#include <functional>
#include <string>
#include <vector>

#include "fairmatch/data/synthetic.h"
#include "fairmatch/engine/matcher.h"
#include "fairmatch/storage/disk_manager.h"

namespace fairmatch {

/// Per-lane reusable storage owned by the runner, handed to consecutive
/// items on the same lane. Today it holds the lane's simulated disk:
/// instead of every generated item allocating (and then freeing) its
/// whole page set, the lane Recycle()s the manager between items so the
/// next item's stores reuse the previous item's page buffers. Recycled
/// state is observably identical to a fresh DiskManager (ids restart at
/// zero, pages come back zeroed), which is what keeps per-item counters
/// byte-identical to a workspace-free run — tests/batch_test.cc holds
/// RunGenerated to that.
class LaneWorkspace {
 public:
  DiskManager& disk() { return disk_; }

  /// Parks every live page for reuse; call between items, before the
  /// next item's stores attach.
  void Recycle() { disk_.Recycle(); }

 private:
  DiskManager disk_;
};

/// One unit of batch work: a registered matcher name plus the
/// environment to run it in. The environment must satisfy the
/// per-item-isolation contract above; env.ctx, when set, must be
/// private to this item (it is what makes the item's counters
/// deterministic regardless of lane placement).
struct BatchItem {
  std::string matcher_name;
  MatcherEnv env;
};

/// Aggregated execution numbers, used both per lane and as batch
/// totals. io/pairs/loops/cpu_ms are sums over the items accounted
/// here; peak_memory_bytes is the maximum over them (lanes reuse
/// memory, they don't hold all items at once).
struct LaneStats {
  int items = 0;
  int64_t io_accesses = 0;
  double cpu_ms = 0.0;
  uint64_t pairs = 0;
  int64_t loops = 0;
  size_t peak_memory_bytes = 0;

  void Accumulate(const RunStats& stats) {
    ++items;
    io_accesses += stats.io_accesses;
    cpu_ms += stats.cpu_ms;
    pairs += stats.pairs;
    loops += stats.loops;
    if (stats.peak_memory_bytes > peak_memory_bytes) {
      peak_memory_bytes = stats.peak_memory_bytes;
    }
  }
};

/// Batch-level aggregates. `totals` sums every item (and therefore
/// equals the field-wise sum of `lanes`, which tests assert); `lanes`
/// breaks the same numbers down by worker lane. Which lane ran which
/// item depends on scheduling, so the lane breakdown — unlike every
/// per-item number — is not stable across thread counts.
struct BatchStats {
  int threads = 1;
  double wall_ms = 0.0;
  double items_per_sec = 0.0;
  LaneStats totals;
  std::vector<LaneStats> lanes;  // size == threads
};

/// Per-item results in submission order, plus the aggregates.
struct BatchResult {
  std::vector<AssignResult> items;
  BatchStats stats;
};

/// Shape of the K independent problem instances the seeded convenience
/// path generates: instance i is built from seed `base_seed + i` with
/// the synthetic generators (data/synthetic.h), indexed and solved
/// entirely inside its worker lane.
struct BatchProblemSpec {
  int num_functions = 50;
  int num_objects = 500;
  int dims = 3;
  Distribution distribution = Distribution::kIndependent;
  uint64_t base_seed = 1;
  int function_capacity = 1;
  int object_capacity = 1;
  int max_gamma = 1;

  /// Storage layout, mirroring bench_common: standard setting (objects
  /// on a per-item paged store) or the Section 7.6 disk-resident-F
  /// setting (objects in memory, coefficient lists on a per-item disk).
  bool disk_resident_functions = false;
  double buffer_fraction = 0.02;

  /// Packed-function setting (topk/packed_function_lists.h): objects in
  /// memory, coefficient lists in a per-item immutable packed image.
  /// Required by matchers with needs_packed_functions (the *-Packed
  /// variants); mutually exclusive with disk_resident_functions.
  /// `packed_mmap` additionally routes the image through a temp file +
  /// MmapFile instead of the in-memory buffer.
  bool packed_functions = false;
  bool packed_mmap = false;

  /// Per-physical-I/O latency for the item's simulated disks
  /// (DiskManager::set_io_latency_us). Zero keeps the pure counted-I/O
  /// model; the batch throughput bench sets it so lanes overlap real
  /// stalls. Counted I/O is unaffected either way.
  int io_latency_us = 0;
};

/// Runs batches of independent assignment problems across worker lanes.
class BatchRunner {
 public:
  /// `threads` worker lanes (clamped to at least 1).
  explicit BatchRunner(int threads);

  int threads() const { return threads_; }

  /// Runs caller-assembled items and returns their results in
  /// submission order. Every item's matcher name must resolve against
  /// MatcherRegistry::Global() under its env (the same conditions
  /// MatcherRegistry::Create checks); violations CHECK-fail.
  BatchResult Run(const std::vector<BatchItem>& items);

  /// Generates `count` independent instances per `spec` and runs
  /// `matcher_name` on each. Generation, index build and solve all
  /// happen inside the worker lanes; results come back in instance
  /// order (instance i == seed base_seed + i).
  BatchResult RunGenerated(const std::string& matcher_name,
                           const BatchProblemSpec& spec, int count);

 private:
  /// Shared fan-out: `run_item(i, ws)` executes item i on some lane,
  /// with `ws` the lane's private reusable workspace.
  BatchResult RunImpl(
      size_t count,
      const std::function<AssignResult(size_t, LaneWorkspace*)>& run_item);

  int threads_;
};

/// Builds and solves one seeded instance exactly as RunGenerated's
/// lanes do (problem from seed base_seed + index, private storage
/// stack, private ExecContext). This is the single-run oracle the
/// batch determinism tests compare lane outputs against. The overload
/// with a workspace is what lanes call; passing nullptr (or using the
/// 3-arg form) allocates fresh storage instead of recycling — the two
/// are observably identical.
AssignResult RunGeneratedInstance(const std::string& matcher_name,
                                  const BatchProblemSpec& spec, size_t index);
AssignResult RunGeneratedInstance(const std::string& matcher_name,
                                  const BatchProblemSpec& spec, size_t index,
                                  LaneWorkspace* ws);

}  // namespace fairmatch

#endif  // FAIRMATCH_ENGINE_BATCH_RUNNER_H_

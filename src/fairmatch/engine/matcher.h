// The Matcher engine seam: one interface, many assignment algorithms.
//
// Every algorithm in the library — SB and its ablations, the two-skyline
// prioritized variant, SB-alt's batch search, Brute Force, Chain, and
// the naive oracle — runs on the same inputs (a problem instance, an
// object R-tree, optionally a disk-resident function index) and produces
// the same outputs (a Matching plus RunStats). MatcherEnv captures the
// inputs once; Matcher exposes the uniform run surface; MatcherRegistry
// (registry.h) maps string names to factories so harnesses never
// hand-roll per-algorithm dispatch.
#ifndef FAIRMATCH_ENGINE_MATCHER_H_
#define FAIRMATCH_ENGINE_MATCHER_H_

#include <string>

#include "fairmatch/assign/problem.h"
#include "fairmatch/engine/exec_context.h"
#include "fairmatch/topk/disk_function_lists.h"

namespace fairmatch {

class PackedFunctionStore;

/// Everything a matcher needs to run, assembled by the caller. The
/// referenced objects must outlive the matcher. For parallel batch
/// execution the environment must be item-private (tree, stores and
/// ctx are stateful even on reads) — see engine/batch_runner.h.
struct MatcherEnv {
  /// The problem instance. Required.
  const AssignmentProblem* problem = nullptr;

  /// R-tree over the problem's objects. Required. Matchers whose info
  /// sets `mutates_tree` (Chain) physically delete from it — pass a
  /// freshly built tree to those.
  RTree* tree = nullptr;

  /// Disk-resident function lists (Section 7.6). When set, matchers
  /// that can exploit it run in the disk-resident-F setting; SB-alt
  /// requires it. When null, functions are indexed in memory.
  DiskFunctionStore* fn_store = nullptr;

  /// Packed block-compressed function lists
  /// (topk/packed_function_lists.h). Required by the *-Packed variants,
  /// which traverse its blocks in impact order; ignored by everything
  /// else.
  PackedFunctionStore* packed_fns = nullptr;

  /// Buffer fraction for a matcher's private disk structures (Chain's
  /// disk-resident function R-tree in the disk-F setting).
  double buffer_fraction = 0.02;

  /// Shared instrumentation for the run. Optional: matchers fall back
  /// to private trackers, but then I/O of multi-store runs is no longer
  /// aggregated for you.
  ExecContext* ctx = nullptr;
};

/// Uniform run surface over one configured algorithm instance.
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// The registry name this matcher was created under (also recorded in
  /// RunStats::algorithm).
  virtual std::string Name() const = 0;

  /// Runs the assignment to completion. Call at most once per instance:
  /// matchers may consume their environment (Chain deletes from the
  /// object tree). Builtin matchers CHECK-fail on a second call;
  /// external implementations should do the same.
  virtual AssignResult Run() = 0;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_ENGINE_MATCHER_H_

#include "fairmatch/engine/registry.h"

namespace fairmatch {

// Defined in builtin_matchers.cc; referenced here so the registration
// translation unit is always pulled out of the static library.
void RegisterBuiltinMatchers(MatcherRegistry* registry);

MatcherRegistry& MatcherRegistry::Global() {
  static MatcherRegistry* registry = [] {
    auto* r = new MatcherRegistry();
    RegisterBuiltinMatchers(r);
    return r;
  }();
  return *registry;
}

void MatcherRegistry::Register(MatcherInfo info) {
  entries_[info.name] = std::move(info);
}

const MatcherInfo* MatcherRegistry::Find(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::unique_ptr<Matcher> MatcherRegistry::Create(
    const std::string& name, const MatcherEnv& env) const {
  const MatcherInfo* info = Find(name);
  if (info == nullptr) return nullptr;
  if (env.problem == nullptr || env.tree == nullptr) return nullptr;
  if (info->needs_disk_functions && env.fn_store == nullptr) return nullptr;
  if (info->needs_packed_functions && env.packed_fns == nullptr) {
    return nullptr;
  }
  return info->factory(env);
}

std::vector<std::string> MatcherRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, info] : entries_) names.push_back(name);
  return names;  // std::map keeps them sorted
}

}  // namespace fairmatch

// Figure 15: prioritized functions (gamma uniform in [1, max]) —
// standard SB (whose TA threshold gets loose) vs the two-skyline
// variant of Section 6.2.
#include "bench_common.h"

using namespace fairmatch;
using namespace fairmatch::bench;

int main() {
  PrintHeader("Figure 15: effect of function priorities",
              "anti-correlated, |F|=5k, |O|=100k, D=4, x = max gamma");
  for (int gamma : {2, 4, 8, 16}) {
    BenchConfig config;
    config.max_gamma = gamma;
    config = Scale(config);
    AssignmentProblem problem = BuildProblem(config);
    for (const char* algo :
         {"SB", "SB-TwoSkylines", "BruteForce", "Chain"}) {
      PrintRow(std::to_string(gamma), Run(algo, problem, config));
    }
  }
  return 0;
}

// Figure 16: real-data experiments. (a,b) Zillow-like objects with
// varying |O|; (c,d) NBA-like objects with capacitated functions.
// See DESIGN.md "Substitutions" for the dataset stand-ins.
#include "bench_common.h"
#include "fairmatch/data/real_sim.h"

using namespace fairmatch;
using namespace fairmatch::bench;

int main() {
  PrintHeader("Figure 16(a,b): Zillow, effect of |O|",
              "Zillow-like 5-attr objects, |F|=5k, x = |O| (paper-scale)");
  {
    auto all_points = ZillowSim(Scaled(400000, 2000), 424242);
    for (int no : {10000, 50000, 100000, 200000, 400000}) {
      BenchConfig config;
      config.dims = 5;
      config.num_objects = no;
      config = Scale(config);
      config.points_override = &all_points;
      AssignmentProblem problem = BuildProblem(config);
      for (const char* algo : {"SB", "BruteForce", "Chain"}) {
        PrintRow(std::to_string(no), Run(algo, problem, config));
      }
    }
  }

  PrintHeader("Figure 16(c,d): NBA, capacitated functions",
              "NBA-like 5-attr objects (12278), |F|=1000, x = capacity k");
  {
    auto nba = NbaSim(kNbaSize, 616161);
    for (int k : {1, 5, 9, 12}) {
      BenchConfig config;
      config.dims = 5;
      config.num_objects = static_cast<int>(nba.size());
      config.num_functions = Scaled(1000, 10);
      config.function_capacity = k;
      config.points_override = &nba;
      AssignmentProblem problem = BuildProblem(config);
      for (const char* algo : {"SB", "BruteForce", "Chain"}) {
        PrintRow(std::to_string(k), Run(algo, problem, config));
      }
    }
  }
  return 0;
}

// Registration of the built-in benchmark figures: the paper's
// experimental evaluation (Figs 8–17, with the multi-part figures split
// into one entry per part) plus the SB-options ablation from DESIGN.md.
// Each spec reproduces the sweep of the former per-figure binary; the
// driver owns problem generation, repetition and serialization.
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "driver/figure_registry.h"
#include "fairmatch/assign/sb.h"
#include "fairmatch/data/real_sim.h"
#include "fairmatch/engine/exec_context.h"
#include "fairmatch/rtree/node_store.h"

namespace fairmatch::bench {

void RegisterBuiltinFigures(FigureRegistry* registry);

namespace {

std::vector<MeasuredRun> Algos(std::initializer_list<const char*> names) {
  std::vector<MeasuredRun> runs;
  runs.reserve(names.size());
  for (const char* name : names) runs.push_back({name, nullptr});
  return runs;
}

FigureSpec Spec(std::string name, std::string description,
                std::function<std::vector<FigureSection>()> sections) {
  FigureSpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.sections = std::move(sections);
  return spec;
}

// --- Figure 8: effectiveness of the Section 5 optimizations ----------
// Anti-correlated objects, |F| = 1000, D in {3, 4, 5}:
// SB vs SB-UpdateSkyline (no 5.1/5.3) vs SB-DeltaSky.
std::vector<FigureSection> Fig08() {
  FigureSection s;
  s.title = "Figure 8: effect of the optimization techniques";
  s.subtitle = "anti-correlated, |F|=1000, |O|=100k, x = dimensionality D";
  for (int dims : {3, 4, 5}) {
    BenchConfig config;
    config.num_functions = 1000;
    config.dims = dims;
    config = Scale(config);
    s.cells.push_back({std::to_string(dims), config, nullptr,
                       Algos({"SB", "SB-UpdateSkyline", "SB-DeltaSky"})});
  }
  return {s};
}

// --- Figure 9: effect of dimensionality D on all three synthetic
// distributions — I/O (a-c), CPU (d-f) and memory (g-i) are columns of
// the emitted rows.
std::vector<FigureSection> Fig09() {
  std::vector<FigureSection> sections;
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kCorrelated,
        Distribution::kAntiCorrelated}) {
    FigureSection s;
    s.key = DistributionName(dist);
    s.title = std::string("Figure 9: effect of dimensionality (") +
              DistributionName(dist) + ")";
    s.subtitle = "|F|=5k, |O|=100k, x = dimensionality D";
    for (int dims : {3, 4, 5, 6}) {
      BenchConfig config;
      config.dims = dims;
      config.distribution = dist;
      config = Scale(config);
      s.cells.push_back({std::to_string(dims), config, nullptr,
                         Algos({"SB", "BruteForce", "Chain"})});
    }
    sections.push_back(std::move(s));
  }
  return sections;
}

// --- Figure 10: effect of the function cardinality |F| ---------------
std::vector<FigureSection> Fig10() {
  FigureSection s;
  s.title = "Figure 10: effect of function cardinality |F|";
  s.subtitle = "anti-correlated, |O|=100k, D=4, x = |F| (paper-scale)";
  for (int nf : {1000, 2500, 5000, 10000, 20000}) {
    BenchConfig config;
    config.num_functions = nf;
    config = Scale(config);
    s.cells.push_back({std::to_string(nf), config, nullptr,
                       Algos({"SB", "BruteForce", "Chain"})});
  }
  return {s};
}

// --- Figure 11: effect of the object cardinality |O| -----------------
std::vector<FigureSection> Fig11() {
  FigureSection s;
  s.title = "Figure 11: effect of object cardinality |O|";
  s.subtitle = "anti-correlated, |F|=5k, D=4, x = |O| (paper-scale)";
  for (int no : {10000, 50000, 100000, 200000, 400000}) {
    BenchConfig config;
    config.num_objects = no;
    config = Scale(config);
    s.cells.push_back({std::to_string(no), config, nullptr,
                       Algos({"SB", "BruteForce", "Chain"})});
  }
  return {s};
}

// --- Figure 12: effect of the preference weight distribution —
// functions drawn from C Gaussian clusters (stddev 0.05) on the weight
// simplex.
std::vector<FigureSection> Fig12() {
  FigureSection s;
  s.title = "Figure 12: effect of the function distribution";
  s.subtitle = "anti-correlated, |F|=5k, |O|=100k, D=4, x = clusters C";
  for (int clusters : {1, 3, 5, 7, 9}) {
    BenchConfig config;
    config.weight_clusters = clusters;
    config = Scale(config);
    s.cells.push_back({std::to_string(clusters), config, nullptr,
                       Algos({"SB", "BruteForce", "Chain"})});
  }
  return {s};
}

// --- Figure 13: effect of the LRU buffer size (fraction of the object
// R-tree file). SB's I/O is flat (it never re-reads a node); the
// competitors improve with larger buffers.
std::vector<FigureSection> Fig13() {
  FigureSection s;
  s.title = "Figure 13: effect of the buffer size";
  s.subtitle = "anti-correlated, |F|=5k, |O|=100k, D=4, x = buffer %";
  for (double buffer : {0.0, 0.01, 0.02, 0.05, 0.10}) {
    BenchConfig config;
    config.buffer_fraction = buffer;
    config = Scale(config);
    char label[16];
    std::snprintf(label, sizeof(label), "%.0f%%", buffer * 100);
    s.cells.push_back(
        {label, config, nullptr, Algos({"SB", "BruteForce", "Chain"})});
  }
  return {s};
}

// --- Figure 14: capacitated assignment. (a,b) functions with capacity
// k — the problem grows to k*|F| pairs; (c,d) objects with capacity k —
// fewer searches and skyline updates are needed.
std::vector<FigureSection> Fig14Functions() {
  FigureSection s;
  s.title = "Figure 14(a,b): effect of function capacity";
  s.subtitle = "anti-correlated, |F|=5k, |O|=100k, D=4, x = capacity k";
  for (int k : {2, 4, 8, 16}) {
    BenchConfig config;
    config.function_capacity = k;
    config = Scale(config);
    s.cells.push_back({std::to_string(k), config, nullptr,
                       Algos({"SB", "BruteForce", "Chain"})});
  }
  return {s};
}

std::vector<FigureSection> Fig14Objects() {
  FigureSection s;
  s.title = "Figure 14(c,d): effect of object capacity";
  s.subtitle = "anti-correlated, |F|=5k, |O|=100k, D=4, x = capacity k";
  for (int k : {2, 4, 8, 16}) {
    BenchConfig config;
    config.object_capacity = k;
    config = Scale(config);
    s.cells.push_back({std::to_string(k), config, nullptr,
                       Algos({"SB", "BruteForce", "Chain"})});
  }
  return {s};
}

// --- Figure 15: prioritized functions (gamma uniform in [1, max]) —
// standard SB (whose TA threshold gets loose) vs the two-skyline
// variant of Section 6.2.
std::vector<FigureSection> Fig15() {
  FigureSection s;
  s.title = "Figure 15: effect of function priorities";
  s.subtitle = "anti-correlated, |F|=5k, |O|=100k, D=4, x = max gamma";
  for (int gamma : {2, 4, 8, 16}) {
    BenchConfig config;
    config.max_gamma = gamma;
    config = Scale(config);
    s.cells.push_back(
        {std::to_string(gamma), config, nullptr,
         Algos({"SB", "SB-TwoSkylines", "BruteForce", "Chain"})});
  }
  return {s};
}

// --- Figure 16: real-data experiments. (a,b) Zillow-like objects with
// varying |O|; (c,d) NBA-like objects with capacitated functions.
// See DESIGN.md "Substitutions" for the dataset stand-ins.
std::vector<FigureSection> Fig16Zillow() {
  FigureSection s;
  s.title = "Figure 16(a,b): Zillow, effect of |O|";
  s.subtitle = "Zillow-like 5-attr objects, |F|=5k, x = |O| (paper-scale)";
  auto all_points = std::make_shared<const std::vector<Point>>(
      ZillowSim(Scaled(400000, 2000), 424242));
  for (int no : {10000, 50000, 100000, 200000, 400000}) {
    BenchConfig config;
    config.dims = 5;
    config.num_objects = no;
    config = Scale(config);
    config.points_override = all_points.get();
    s.cells.push_back({std::to_string(no), config, all_points,
                       Algos({"SB", "BruteForce", "Chain"})});
  }
  return {s};
}

std::vector<FigureSection> Fig16Nba() {
  FigureSection s;
  s.title = "Figure 16(c,d): NBA, capacitated functions";
  s.subtitle = "NBA-like 5-attr objects (12278), |F|=1000, x = capacity k";
  auto nba =
      std::make_shared<const std::vector<Point>>(NbaSim(kNbaSize, 616161));
  for (int k : {1, 5, 9, 12}) {
    BenchConfig config;
    config.dims = 5;
    config.num_objects = static_cast<int>(nba->size());
    config.num_functions = Scaled(1000, 10);
    config.function_capacity = k;
    config.points_override = nba.get();
    s.cells.push_back({std::to_string(k), config, nba,
                       Algos({"SB", "BruteForce", "Chain"})});
  }
  return {s};
}

// --- Figure 17: disk-resident functions (Section 7.6). The
// cardinalities of F and O are swapped relative to the defaults:
// |F|=100k on the simulated disk (sorted coefficient lists), |O|=5k in
// a main-memory R-tree. SB-alt's batch best-pair search saves the I/O.
std::vector<FigureSection> Fig17() {
  std::vector<FigureSection> sections;
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kAntiCorrelated}) {
    FigureSection s;
    s.key = DistributionName(dist);
    s.title = std::string("Figure 17: disk-resident F (") +
              DistributionName(dist) + ")";
    s.subtitle = "|F|=100k on disk, |O|=5k in memory, x = dimensionality D";
    for (int dims : {3, 4, 5, 6}) {
      BenchConfig config;
      config.num_functions = 100000;
      config.num_objects = 5000;
      config.dims = dims;
      config.distribution = dist;
      config.disk_resident_functions = true;
      config = Scale(config);
      s.cells.push_back({std::to_string(dims), config, nullptr,
                         Algos({"SB", "SB-alt", "BruteForce", "Chain"})});
    }
    sections.push_back(std::move(s));
  }
  return sections;
}

// --- Ablation (ours, beyond the paper's figures): isolates each SB
// design choice called out in DESIGN.md — the Omega queue cap, biased
// vs round-robin probing, resumable searches, and multi-pair loops.
// Option-level sweeps are SBOptions knobs, not registry variants, so
// these cells carry custom runners — instrumented through the same
// ExecContext protocol as bench::Run.
RunStats RunSBWith(const AssignmentProblem& problem,
                   const BenchConfig& config, const SBOptions& options) {
  ExecContext ctx;
  PagedNodeStore store(problem.dims, 4096, &ctx.counters());
  RTree tree(&store);
  BuildObjectTree(problem, &tree);
  store.ResetCounters();
  store.SetBufferFraction(config.buffer_fraction);
  ctx.BeginRun();
  SBAssignment sb(&problem, &tree, options, nullptr, &ctx);
  AssignResult result = sb.Run();
  result.stats.algorithm = "SB";
  result.stats.pairs = result.matching.size();
  ctx.Finish(&result.stats);
  return result.stats;
}

FigureCell SBCell(std::string x, const BenchConfig& config,
                  const SBOptions& options) {
  MeasuredRun run;
  run.algorithm = "SB";
  run.runner = [options](const AssignmentProblem& problem,
                         const BenchConfig& c) {
    return RunSBWith(problem, c, options);
  };
  return {std::move(x), config, nullptr, {std::move(run)}};
}

std::vector<FigureSection> AblationSB() {
  BenchConfig config;
  config = Scale(config);

  FigureSection omega;
  omega.key = "omega";
  omega.title = "Ablation A: Omega (resume-queue capacity, % of |F|)";
  omega.subtitle = "anti-correlated defaults; x = omega";
  for (double value : {0.005, 0.01, 0.025, 0.05, 0.10}) {
    SBOptions options;
    options.ta.omega = value;
    char label[16];
    std::snprintf(label, sizeof(label), "%.1f%%", value * 100);
    omega.cells.push_back(SBCell(label, config, options));
  }

  FigureSection probing;
  probing.key = "probing";
  probing.title = "Ablation B: TA probing and resume strategy";
  probing.subtitle = "anti-correlated defaults; x = strategy";
  {
    SBOptions options;
    probing.cells.push_back(SBCell("biased", config, options));
  }
  {
    SBOptions options;
    options.ta.biased_probing = false;
    probing.cells.push_back(SBCell("round-robin", config, options));
  }
  {
    SBOptions options;
    options.ta.resume = false;
    probing.cells.push_back(SBCell("no-resume", config, options));
  }

  FigureSection pairs;
  pairs.key = "multi-pair";
  pairs.title = "Ablation C: multiple pairs per loop (Section 5.3)";
  pairs.subtitle = "anti-correlated defaults; x = mode";
  {
    SBOptions options;
    pairs.cells.push_back(SBCell("multi-pair", config, options));
  }
  {
    SBOptions options;
    options.multi_pair = false;
    pairs.cells.push_back(SBCell("single-pair", config, options));
  }

  return {std::move(omega), std::move(probing), std::move(pairs)};
}

}  // namespace

void RegisterBuiltinFigures(FigureRegistry* registry) {
  registry->Register(Spec(
      "fig08_optimizations",
      "Effect of the Section 5 optimization techniques (SB ablations)",
      Fig08));
  registry->Register(Spec(
      "fig09_dimensionality",
      "Effect of dimensionality D on all three synthetic distributions",
      Fig09));
  registry->Register(Spec("fig10_function_cardinality",
                          "Effect of the function cardinality |F|", Fig10));
  registry->Register(Spec("fig11_object_cardinality",
                          "Effect of the object cardinality |O|", Fig11));
  registry->Register(Spec("fig12_function_distribution",
                          "Effect of clustered preference weights", Fig12));
  registry->Register(
      Spec("fig13_buffer_size", "Effect of the LRU buffer size", Fig13));
  registry->Register(Spec("fig14_function_capacity",
                          "Capacitated functions (Figure 14 a,b)",
                          Fig14Functions));
  registry->Register(Spec("fig14_object_capacity",
                          "Capacitated objects (Figure 14 c,d)",
                          Fig14Objects));
  registry->Register(Spec(
      "fig15_priority",
      "Prioritized functions: SB vs the two-skyline variant", Fig15));
  registry->Register(Spec("fig16_zillow",
                          "Zillow-like real data, effect of |O| "
                          "(Figure 16 a,b)",
                          Fig16Zillow));
  registry->Register(Spec("fig16_nba",
                          "NBA-like real data, capacitated functions "
                          "(Figure 16 c,d)",
                          Fig16Nba));
  registry->Register(Spec("fig17_disk_functions",
                          "Disk-resident function lists (Section 7.6)",
                          Fig17));
  registry->Register(Spec("ablation_sb",
                          "SB design-choice ablation (omega, probing, "
                          "multi-pair)",
                          AblationSB));
}

}  // namespace fairmatch::bench

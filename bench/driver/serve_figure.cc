// The serving_latency figure: end-to-end request latency of the
// fairmatchd serving core (src/fairmatch/serve/) under open-loop load.
//
// One section per arrival rate; the x axis is the server's lane count.
// Each cell submits the same fixed request sequence — SB (shared
// resident tree), SB-Packed (shared packed image through per-request
// views), SB-alt (per-request disk-resident function lists on the
// lane's recycled workspace) round-robin — paced at the section's
// arrival rate, and reports per-matcher latency percentiles:
//
//   <m>       cpu_ms = p50 end-to-end latency (queue + execution)
//   <m>:p99   cpu_ms = p99 end-to-end latency
//   mix:throughput   cpu_ms = achieved requests/second over the run
//
// The deterministic columns keep their engine meaning and are the CI
// hook: io_accesses and pairs are totals over the row's requests, and
// loops carries a 48-bit digest of the matchings in submission order.
// Because every request runs in its own ExecContext over shared
// immutable structures, these three columns are byte-identical at
// every lane count and every arrival rate — check_bench_report.py
// asserts exactly that, turning the smoke bench into a concurrency
// determinism gate. Only the latency columns may vary.
//
// A final "open" section measures the dataset lifecycle: cold open
// (build the R-tree + packed image; cpu_ms = build wall time, mem_mb =
// resident footprint) vs warm open (share the resident structures).
//
// An "overload" section measures admission control: a registered
// BenchHold matcher pins the single lane while a burst overruns the
// bounded queue, so every rejected / timed-out / completed count is
// decided by the server's limits, not by timing — the rows are exact
// request-rate columns check_bench_report.py can assert.
#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "driver/figure_registry.h"
#include "fairmatch/common/check.h"
#include "fairmatch/common/timer.h"
#include "fairmatch/engine/exec_context.h"
#include "fairmatch/engine/registry.h"
#include "fairmatch/serve/dataset_registry.h"
#include "fairmatch/serve/server.h"

namespace fairmatch::bench {

namespace {

/// The fixed matcher rotation every experiment serves. Covers all
/// three function backends (resident tree, packed image view, disk
/// lists on the recycled lane workspace).
const char* const kServeMix[] = {"SB", "SB-Packed", "SB-alt"};
constexpr int kServeMixSize = 3;

/// Requests per experiment for the current scale (--requests overrides).
int ServeRequests() {
  const int flag = GetServeBenchParams().requests;
  return flag > 0 ? flag : Scaled(192, 24);
}

/// Everything one open-loop run produces for one matcher.
struct MatcherSeries {
  std::vector<double> total_ms;  // per response, submission order
  int64_t io_accesses = 0;
  uint64_t pairs = 0;
  uint64_t digest = 1469598103934665603ull;  // FNV offset basis
};

struct ExperimentResult {
  std::map<std::string, MatcherSeries> per_matcher;
  double wall_ms = 0.0;
  int requests = 0;
};

/// Per-cell memo: rows of the same cell (and the same repeat index)
/// share one experiment run instead of re-driving the server per row.
struct ExperimentCache {
  std::vector<ExperimentResult> samples;
};

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t HashMatching(const Matching& matching) {
  uint64_t h = 1469598103934665603ull;
  for (const MatchPair& p : matching) {
    h = Fnv1a(h, static_cast<uint64_t>(p.fid));
    h = Fnv1a(h, static_cast<uint64_t>(p.oid));
  }
  return h;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index =
      static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  return values[index];
}

ExperimentResult RunServeExperiment(const AssignmentProblem& problem,
                                    int lanes, int arrival_per_sec) {
  const int requests = ServeRequests();

  serve::DatasetRegistry registry;
  registry.Open("bench", problem);
  serve::ServerOptions options;
  options.lanes = lanes;
  // Admit the full request set: rejections would make the
  // deterministic columns depend on timing.
  options.max_queue = static_cast<size_t>(requests);
  serve::Server server(&registry, options);

  // Open-loop arrivals: Submit() fires on a fixed schedule regardless
  // of how far behind the lanes are (that lag IS the measured queueing).
  const auto interval =
      std::chrono::nanoseconds(1000000000ll / arrival_per_sec);
  const auto start = std::chrono::steady_clock::now();
  std::vector<serve::ResponseFuture> futures;
  futures.reserve(static_cast<size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    std::this_thread::sleep_until(start + i * interval);
    serve::Request request;
    request.dataset = "bench";
    request.matcher = kServeMix[i % kServeMixSize];
    futures.push_back(server.Submit(std::move(request)));
  }

  ExperimentResult result;
  result.requests = requests;
  for (int i = 0; i < requests; ++i) {
    const serve::Response& response =
        futures[static_cast<size_t>(i)].Wait();
    FAIRMATCH_CHECK(response.status.ok());
    MatcherSeries& series = result.per_matcher[kServeMix[i % kServeMixSize]];
    series.total_ms.push_back(response.total_ms);
    series.io_accesses += response.stats.io_accesses;
    series.pairs += response.stats.pairs;
    series.digest = Fnv1a(series.digest, HashMatching(response.matching));
  }
  result.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  server.Close();
  return result;
}

/// The repeat-aware lookup: row runners share the cell's cache; each
/// runner advances its own sample cursor so repeat r of every row reads
/// the same experiment run.
const ExperimentResult& SampleFor(
    const std::shared_ptr<ExperimentCache>& cache,
    const std::shared_ptr<size_t>& cursor, const AssignmentProblem& problem,
    int lanes, int arrival_per_sec) {
  const size_t index = (*cursor)++;
  while (cache->samples.size() <= index) {
    cache->samples.push_back(
        RunServeExperiment(problem, lanes, arrival_per_sec));
  }
  return cache->samples[index];
}

/// Holds its lane for a fixed wall interval, then succeeds. Long
/// enough that the overload burst (microseconds of Submit calls) is
/// fully adjudicated — queued or rejected — before the lane frees up.
class HoldMatcher : public Matcher {
 public:
  explicit HoldMatcher(ExecContext* ctx) : ctx_(ctx) {}
  std::string Name() const override { return "BenchHold"; }
  AssignResult Run() override {
    AssignResult result;
    result.stats.algorithm = "BenchHold";
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(250);
    while (std::chrono::steady_clock::now() < until &&
           !(ctx_ != nullptr && ctx_->ShouldAbort())) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (ctx_ != nullptr) result.status = ctx_->status();
    return result;
  }

 private:
  ExecContext* ctx_;
};

/// Registers BenchHold once. Safe here because figures run one at a
/// time and no server lane is alive between experiments (Register is
/// not synchronized).
void EnsureHoldMatcherRegistered() {
  static const bool registered = [] {
    MatcherInfo info;
    info.name = "BenchHold";
    info.description = "bench stub: occupies a lane for a fixed interval";
    info.factory = [](const MatcherEnv& env) {
      return std::make_unique<HoldMatcher>(env.ctx);
    };
    MatcherRegistry::Global().Register(std::move(info));
    return true;
  }();
  (void)registered;
}

struct OverloadResult {
  int submitted = 0;
  int ok = 0;
  int rejected = 0;   // kOverloaded at Submit
  int deadline = 0;   // kDeadlineExceeded while queued
};

/// One lane, a 4-deep queue, a BenchHold pinning the lane, then a
/// 12-request burst with 1 ms deadlines: 4 requests queue (and expire
/// at dequeue, since the lane stays held far longer than 1 ms), 8 are
/// rejected at admission, and only the blocker completes. Every count
/// is forced by the configured limits.
OverloadResult RunOverloadExperiment(const AssignmentProblem& problem) {
  EnsureHoldMatcherRegistered();
  serve::DatasetRegistry registry;
  registry.Open("bench", problem);

  serve::ServerOptions options;
  options.lanes = 1;
  options.max_queue = 4;
  serve::Server server(&registry, options);

  serve::Request blocker;
  blocker.dataset = "bench";
  blocker.matcher = "BenchHold";
  serve::ResponseFuture held = server.Submit(blocker);
  // The burst must find the blocker *running*, not queued, or it would
  // occupy one of the four queue slots.
  while (server.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  constexpr int kBurst = 12;
  std::vector<serve::ResponseFuture> futures;
  futures.reserve(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    serve::Request request;
    request.dataset = "bench";
    request.matcher = kServeMix[i % kServeMixSize];
    request.deadline_ms = 1.0;
    futures.push_back(server.Submit(std::move(request)));
  }

  OverloadResult result;
  result.submitted = kBurst + 1;
  if (held.Wait().status.ok()) ++result.ok;
  for (serve::ResponseFuture& future : futures) {
    const serve::Response& response = future.Wait();
    if (response.status.ok()) {
      ++result.ok;
    } else if (response.status.code == serve::ServeCode::kOverloaded) {
      ++result.rejected;
    } else if (response.status.code == serve::ServeCode::kDeadlineExceeded) {
      ++result.deadline;
    }
  }
  server.Close();
  return result;
}

/// Deterministic columns shared by every row of one matcher. loops is
/// masked to 48 bits so the digest survives any double-typed JSON
/// round-trip exactly.
void FillDeterministicColumns(const MatcherSeries& series, RunStats* stats) {
  stats->io_accesses = series.io_accesses;
  stats->pairs = static_cast<size_t>(series.pairs);
  stats->loops =
      static_cast<int64_t>(series.digest & ((1ull << 48) - 1));
}

std::vector<FigureSection> ServingLatency() {
  const ServeBenchParams& params = GetServeBenchParams();
  const int requests = ServeRequests();

  // The resident dataset's shape (scaled like every figure). Modest:
  // the figure measures the serving layer, not one giant instance.
  BenchConfig shape;
  shape.num_functions = 1000;
  shape.num_objects = 20000;
  shape.dims = 3;
  shape = Scale(shape);

  std::vector<FigureSection> sections;
  for (const int rate : params.arrival_per_sec) {
    FigureSection s;
    s.key = "rate" + std::to_string(rate);
    s.title = "Serving latency at " + std::to_string(rate) +
              " req/s open-loop arrivals";
    s.subtitle =
        "x = server lanes, " + std::to_string(requests) +
        " requests round-robin over SB / SB-Packed / SB-alt "
        "(cpu_ms = p50 end-to-end ms; :p99 rows = p99; mix:throughput = "
        "achieved req/s; io/pairs/loops are per-matcher totals + "
        "matching digest, identical at every x and every rate)";
    for (const int lanes : params.lanes) {
      FigureCell cell;
      cell.x = std::to_string(lanes);
      cell.config = shape;
      auto cache = std::make_shared<ExperimentCache>();
      for (const char* name : kServeMix) {
        for (const bool p99 : {false, true}) {
          MeasuredRun run;
          run.algorithm = p99 ? std::string(name) + ":p99" : name;
          auto cursor = std::make_shared<size_t>(0);
          run.runner = [cache, cursor, name, p99, lanes, rate](
                           const AssignmentProblem& problem,
                           const BenchConfig&) {
            const ExperimentResult& sample =
                SampleFor(cache, cursor, problem, lanes, rate);
            const MatcherSeries& series = sample.per_matcher.at(name);
            RunStats stats;
            stats.algorithm = name;
            stats.cpu_ms = Percentile(series.total_ms, p99 ? 0.99 : 0.50);
            FillDeterministicColumns(series, &stats);
            return stats;
          };
          cell.runs.push_back(std::move(run));
        }
      }
      {
        MeasuredRun run;
        run.algorithm = "mix:throughput";
        auto cursor = std::make_shared<size_t>(0);
        run.runner = [cache, cursor, lanes, rate](
                         const AssignmentProblem& problem,
                         const BenchConfig&) {
          const ExperimentResult& sample =
              SampleFor(cache, cursor, problem, lanes, rate);
          RunStats stats;
          stats.algorithm = "mix:throughput";
          stats.cpu_ms = sample.wall_ms > 0.0
                             ? 1000.0 * sample.requests / sample.wall_ms
                             : 0.0;
          // Whole-mix totals/digest: one more lane-invariant line.
          uint64_t digest = 1469598103934665603ull;
          for (const auto& [name, series] : sample.per_matcher) {
            stats.io_accesses += series.io_accesses;
            stats.pairs += static_cast<size_t>(series.pairs);
            digest = Fnv1a(digest, series.digest);
          }
          stats.loops =
              static_cast<int64_t>(digest & ((1ull << 48) - 1));
          return stats;
        };
        cell.runs.push_back(std::move(run));
      }
      s.cells.push_back(std::move(cell));
    }
    sections.push_back(std::move(s));
  }

  // Dataset lifecycle: what an open costs cold (build everything) vs
  // warm (share the resident structures).
  {
    FigureSection s;
    s.key = "open";
    s.title = "Dataset open cost: cold build vs warm share";
    s.subtitle =
        "cpu_ms = wall ms per open (cold = R-tree bulk load + packed "
        "image build; warm = registry lookup); mem_mb = resident "
        "footprint";
    for (const char* which : {"cold", "warm"}) {
      FigureCell cell;
      cell.x = which;
      cell.config = shape;
      MeasuredRun run;
      run.algorithm = "open";
      const bool warm = std::string(which) == "warm";
      run.runner = [warm](const AssignmentProblem& problem,
                          const BenchConfig&) {
        serve::DatasetRegistry registry;
        serve::DatasetHandle handle = registry.Open("bench", problem);
        RunStats stats;
        stats.algorithm = "open";
        if (warm) {
          Timer timer;
          handle = registry.Open("bench", problem);
          stats.cpu_ms = timer.ElapsedMs();
        } else {
          stats.cpu_ms = handle->build_ms();
        }
        stats.peak_memory_bytes = handle->memory_bytes();
        return stats;
      };
      cell.runs.push_back(std::move(run));
      s.cells.push_back(std::move(cell));
    }
    sections.push_back(std::move(s));
  }

  // Admission control under a deliberate overload (see file comment).
  // cpu_ms = share of submitted requests (%), io_accesses = the raw
  // count, pairs = requests submitted: exact integers a checker can
  // assert (ok + rejected + deadline == submitted, rejected > 0, ...).
  {
    FigureSection s;
    s.key = "overload";
    s.title = "Admission control: burst against a held lane";
    s.subtitle =
        "1 lane pinned by BenchHold, queue bound 4, then a 12-request "
        "burst with 1 ms deadlines (cpu_ms = % of submitted, io = "
        "count, pairs = submitted; rejected = kOverloaded at Submit, "
        "deadline = expired while queued)";
    FigureCell cell;
    cell.x = "burst";
    cell.config = shape;
    auto cache = std::make_shared<std::vector<OverloadResult>>();
    struct Row {
      const char* name;
      int OverloadResult::*count;
    };
    const Row kRows[] = {{"submitted", &OverloadResult::submitted},
                         {"ok", &OverloadResult::ok},
                         {"rejected", &OverloadResult::rejected},
                         {"deadline", &OverloadResult::deadline}};
    for (const Row& row : kRows) {
      MeasuredRun run;
      run.algorithm = row.name;
      auto cursor = std::make_shared<size_t>(0);
      const char* name = row.name;
      int OverloadResult::*count = row.count;
      run.runner = [cache, cursor, name, count](
                       const AssignmentProblem& problem,
                       const BenchConfig&) {
        const size_t index = (*cursor)++;
        while (cache->size() <= index) {
          cache->push_back(RunOverloadExperiment(problem));
        }
        const OverloadResult& sample = (*cache)[index];
        RunStats stats;
        stats.algorithm = name;
        stats.cpu_ms = sample.submitted > 0
                           ? 100.0 * (sample.*count) / sample.submitted
                           : 0.0;
        stats.io_accesses = sample.*count;
        stats.pairs = static_cast<size_t>(sample.submitted);
        return stats;
      };
      cell.runs.push_back(std::move(run));
    }
    s.cells.push_back(std::move(cell));
    sections.push_back(std::move(s));
  }
  return sections;
}

}  // namespace

void RegisterServeFigure(FigureRegistry* registry) {
  FigureSpec spec;
  spec.name = "serving_latency";
  spec.description =
      "fairmatchd serving core: open-loop p50/p99 latency over lanes "
      "and arrival rates (--serve-lanes, --arrival, --requests)";
  spec.sections = ServingLatency;
  registry->Register(std::move(spec));
}

}  // namespace fairmatch::bench

// The serving_latency figure: end-to-end request latency of the
// fairmatchd serving core (src/fairmatch/serve/) under open-loop load.
//
// One section per arrival rate; the x axis is the server's lane count.
// Each cell submits the same fixed request sequence — SB (shared
// resident tree), SB-Packed (shared packed image through per-request
// views), SB-alt (per-request disk-resident function lists on the
// lane's recycled workspace) round-robin — paced at the section's
// arrival rate, and reports per-matcher latency percentiles:
//
//   <m>       cpu_ms = p50 end-to-end latency (queue + execution)
//   <m>:p99   cpu_ms = p99 end-to-end latency
//   mix:throughput   cpu_ms = achieved requests/second over the run
//
// The deterministic columns keep their engine meaning and are the CI
// hook: io_accesses and pairs are totals over the row's requests, and
// loops carries a 48-bit digest of the matchings in submission order.
// Because every request runs in its own ExecContext over shared
// immutable structures, these three columns are byte-identical at
// every lane count and every arrival rate — check_bench_report.py
// asserts exactly that, turning the smoke bench into a concurrency
// determinism gate. Only the latency columns may vary.
//
// A final "open" section measures the dataset lifecycle: cold open
// (build the R-tree + packed image; cpu_ms = build wall time, mem_mb =
// resident footprint) vs warm open (share the resident structures).
#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "driver/figure_registry.h"
#include "fairmatch/common/check.h"
#include "fairmatch/common/timer.h"
#include "fairmatch/serve/dataset_registry.h"
#include "fairmatch/serve/server.h"

namespace fairmatch::bench {

namespace {

/// The fixed matcher rotation every experiment serves. Covers all
/// three function backends (resident tree, packed image view, disk
/// lists on the recycled lane workspace).
const char* const kServeMix[] = {"SB", "SB-Packed", "SB-alt"};
constexpr int kServeMixSize = 3;

/// Requests per experiment for the current scale (--requests overrides).
int ServeRequests() {
  const int flag = GetServeBenchParams().requests;
  return flag > 0 ? flag : Scaled(192, 24);
}

/// Everything one open-loop run produces for one matcher.
struct MatcherSeries {
  std::vector<double> total_ms;  // per response, submission order
  int64_t io_accesses = 0;
  uint64_t pairs = 0;
  uint64_t digest = 1469598103934665603ull;  // FNV offset basis
};

struct ExperimentResult {
  std::map<std::string, MatcherSeries> per_matcher;
  double wall_ms = 0.0;
  int requests = 0;
};

/// Per-cell memo: rows of the same cell (and the same repeat index)
/// share one experiment run instead of re-driving the server per row.
struct ExperimentCache {
  std::vector<ExperimentResult> samples;
};

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t HashMatching(const Matching& matching) {
  uint64_t h = 1469598103934665603ull;
  for (const MatchPair& p : matching) {
    h = Fnv1a(h, static_cast<uint64_t>(p.fid));
    h = Fnv1a(h, static_cast<uint64_t>(p.oid));
  }
  return h;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index =
      static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  return values[index];
}

ExperimentResult RunServeExperiment(const AssignmentProblem& problem,
                                    int lanes, int arrival_per_sec) {
  const int requests = ServeRequests();

  serve::DatasetRegistry registry;
  registry.Open("bench", problem);
  serve::ServerOptions options;
  options.lanes = lanes;
  // Admit the full request set: rejections would make the
  // deterministic columns depend on timing.
  options.max_queue = static_cast<size_t>(requests);
  serve::Server server(&registry, options);

  // Open-loop arrivals: Submit() fires on a fixed schedule regardless
  // of how far behind the lanes are (that lag IS the measured queueing).
  const auto interval =
      std::chrono::nanoseconds(1000000000ll / arrival_per_sec);
  const auto start = std::chrono::steady_clock::now();
  std::vector<serve::ResponseFuture> futures;
  futures.reserve(static_cast<size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    std::this_thread::sleep_until(start + i * interval);
    serve::Request request;
    request.dataset = "bench";
    request.matcher = kServeMix[i % kServeMixSize];
    futures.push_back(server.Submit(std::move(request)));
  }

  ExperimentResult result;
  result.requests = requests;
  for (int i = 0; i < requests; ++i) {
    const serve::Response& response =
        futures[static_cast<size_t>(i)].Wait();
    FAIRMATCH_CHECK(response.status.ok());
    MatcherSeries& series = result.per_matcher[kServeMix[i % kServeMixSize]];
    series.total_ms.push_back(response.total_ms);
    series.io_accesses += response.stats.io_accesses;
    series.pairs += response.stats.pairs;
    series.digest = Fnv1a(series.digest, HashMatching(response.matching));
  }
  result.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  server.Close();
  return result;
}

/// The repeat-aware lookup: row runners share the cell's cache; each
/// runner advances its own sample cursor so repeat r of every row reads
/// the same experiment run.
const ExperimentResult& SampleFor(
    const std::shared_ptr<ExperimentCache>& cache,
    const std::shared_ptr<size_t>& cursor, const AssignmentProblem& problem,
    int lanes, int arrival_per_sec) {
  const size_t index = (*cursor)++;
  while (cache->samples.size() <= index) {
    cache->samples.push_back(
        RunServeExperiment(problem, lanes, arrival_per_sec));
  }
  return cache->samples[index];
}

/// Deterministic columns shared by every row of one matcher. loops is
/// masked to 48 bits so the digest survives any double-typed JSON
/// round-trip exactly.
void FillDeterministicColumns(const MatcherSeries& series, RunStats* stats) {
  stats->io_accesses = series.io_accesses;
  stats->pairs = static_cast<size_t>(series.pairs);
  stats->loops =
      static_cast<int64_t>(series.digest & ((1ull << 48) - 1));
}

std::vector<FigureSection> ServingLatency() {
  const ServeBenchParams& params = GetServeBenchParams();
  const int requests = ServeRequests();

  // The resident dataset's shape (scaled like every figure). Modest:
  // the figure measures the serving layer, not one giant instance.
  BenchConfig shape;
  shape.num_functions = 1000;
  shape.num_objects = 20000;
  shape.dims = 3;
  shape = Scale(shape);

  std::vector<FigureSection> sections;
  for (const int rate : params.arrival_per_sec) {
    FigureSection s;
    s.key = "rate" + std::to_string(rate);
    s.title = "Serving latency at " + std::to_string(rate) +
              " req/s open-loop arrivals";
    s.subtitle =
        "x = server lanes, " + std::to_string(requests) +
        " requests round-robin over SB / SB-Packed / SB-alt "
        "(cpu_ms = p50 end-to-end ms; :p99 rows = p99; mix:throughput = "
        "achieved req/s; io/pairs/loops are per-matcher totals + "
        "matching digest, identical at every x and every rate)";
    for (const int lanes : params.lanes) {
      FigureCell cell;
      cell.x = std::to_string(lanes);
      cell.config = shape;
      auto cache = std::make_shared<ExperimentCache>();
      for (const char* name : kServeMix) {
        for (const bool p99 : {false, true}) {
          MeasuredRun run;
          run.algorithm = p99 ? std::string(name) + ":p99" : name;
          auto cursor = std::make_shared<size_t>(0);
          run.runner = [cache, cursor, name, p99, lanes, rate](
                           const AssignmentProblem& problem,
                           const BenchConfig&) {
            const ExperimentResult& sample =
                SampleFor(cache, cursor, problem, lanes, rate);
            const MatcherSeries& series = sample.per_matcher.at(name);
            RunStats stats;
            stats.algorithm = name;
            stats.cpu_ms = Percentile(series.total_ms, p99 ? 0.99 : 0.50);
            FillDeterministicColumns(series, &stats);
            return stats;
          };
          cell.runs.push_back(std::move(run));
        }
      }
      {
        MeasuredRun run;
        run.algorithm = "mix:throughput";
        auto cursor = std::make_shared<size_t>(0);
        run.runner = [cache, cursor, lanes, rate](
                         const AssignmentProblem& problem,
                         const BenchConfig&) {
          const ExperimentResult& sample =
              SampleFor(cache, cursor, problem, lanes, rate);
          RunStats stats;
          stats.algorithm = "mix:throughput";
          stats.cpu_ms = sample.wall_ms > 0.0
                             ? 1000.0 * sample.requests / sample.wall_ms
                             : 0.0;
          // Whole-mix totals/digest: one more lane-invariant line.
          uint64_t digest = 1469598103934665603ull;
          for (const auto& [name, series] : sample.per_matcher) {
            stats.io_accesses += series.io_accesses;
            stats.pairs += static_cast<size_t>(series.pairs);
            digest = Fnv1a(digest, series.digest);
          }
          stats.loops =
              static_cast<int64_t>(digest & ((1ull << 48) - 1));
          return stats;
        };
        cell.runs.push_back(std::move(run));
      }
      s.cells.push_back(std::move(cell));
    }
    sections.push_back(std::move(s));
  }

  // Dataset lifecycle: what an open costs cold (build everything) vs
  // warm (share the resident structures).
  {
    FigureSection s;
    s.key = "open";
    s.title = "Dataset open cost: cold build vs warm share";
    s.subtitle =
        "cpu_ms = wall ms per open (cold = R-tree bulk load + packed "
        "image build; warm = registry lookup); mem_mb = resident "
        "footprint";
    for (const char* which : {"cold", "warm"}) {
      FigureCell cell;
      cell.x = which;
      cell.config = shape;
      MeasuredRun run;
      run.algorithm = "open";
      const bool warm = std::string(which) == "warm";
      run.runner = [warm](const AssignmentProblem& problem,
                          const BenchConfig&) {
        serve::DatasetRegistry registry;
        serve::DatasetHandle handle = registry.Open("bench", problem);
        RunStats stats;
        stats.algorithm = "open";
        if (warm) {
          Timer timer;
          handle = registry.Open("bench", problem);
          stats.cpu_ms = timer.ElapsedMs();
        } else {
          stats.cpu_ms = handle->build_ms();
        }
        stats.peak_memory_bytes = handle->memory_bytes();
        return stats;
      };
      cell.runs.push_back(std::move(run));
      s.cells.push_back(std::move(cell));
    }
    sections.push_back(std::move(s));
  }
  return sections;
}

}  // namespace

void RegisterServeFigure(FigureRegistry* registry) {
  FigureSpec spec;
  spec.name = "serving_latency";
  spec.description =
      "fairmatchd serving core: open-loop p50/p99 latency over lanes "
      "and arrival rates (--serve-lanes, --arrival, --requests)";
  spec.sections = ServingLatency;
  registry->Register(std::move(spec));
}

}  // namespace fairmatch::bench

#include "driver/report.h"

#include <cstdio>

#include "bench_common.h"

#ifndef FAIRMATCH_GIT_SHA
#define FAIRMATCH_GIT_SHA "unknown"
#endif

namespace fairmatch::bench {

namespace {

/// Fixed-precision double formatting (streams default to %g, which
/// drops trailing digits the CSV/JSON consumers expect to be stable).
std::string Fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

/// Quotes a CSV field only when it needs it (comma, quote, newline).
std::string CsvField(const std::string& value) {
  if (value.find_first_of(",\"\n") == std::string::npos) return value;
  std::string quoted = "\"";
  for (char c : value) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

/// Minimal JSON string escaping; our strings are ASCII labels.
std::string JsonString(const std::string& value) {
  std::string out = "\"";
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
  return out;
}

void WriteJsonRow(std::ostream& out, const ReportRow& row,
                  const std::string& indent) {
  out << indent << "{\"section\": " << JsonString(row.section)
      << ", \"x\": " << JsonString(row.x)
      << ", \"algorithm\": " << JsonString(row.algorithm)
      << ", \"io_accesses\": " << row.io_accesses
      << ", \"cpu_ms\": " << Fixed(row.cpu_ms, 3)
      << ", \"cpu_ms_min\": " << Fixed(row.cpu_ms_min, 3)
      << ", \"cpu_ms_stddev\": " << Fixed(row.cpu_ms_stddev, 3)
      << ", \"mem_mb\": " << Fixed(row.mem_mb, 4)
      << ", \"pairs\": " << row.pairs << ", \"loops\": " << row.loops
      << ", \"seed\": " << row.seed << "}";
}

}  // namespace

std::string GitSha() { return FAIRMATCH_GIT_SHA; }

void ReportSink::BeginSection(const std::string& /*title*/,
                              const std::string& /*subtitle*/) {}

void ReportSink::Close() {}

TextSink::TextSink(std::ostream* out, ReportMeta meta)
    : out_(out), meta_(std::move(meta)) {}

void TextSink::BeginSection(const std::string& title,
                            const std::string& subtitle) {
  char header[160];
  std::snprintf(header, sizeof(header), "# %-10s %-18s %12s %12s %10s %8s %8s",
                "x", "algo", "io_accesses", "cpu_ms", "mem_mb", "pairs",
                "loops");
  *out_ << "# " << title << "\n# " << subtitle << "  [scale=" << meta_.scale
        << "]\n"
        << header << "\n";
  out_->flush();
}

void TextSink::AddRow(const ReportRow& row) {
  char line[256];
  std::snprintf(line, sizeof(line), "%-12s %-18s %12lld %12.1f %10.2f %8llu %8lld",
                row.x.c_str(), row.algorithm.c_str(),
                static_cast<long long>(row.io_accesses), row.cpu_ms,
                row.mem_mb, static_cast<unsigned long long>(row.pairs),
                static_cast<long long>(row.loops));
  *out_ << line << "\n";
  out_->flush();
}

const char* CsvHeader() {
  return "figure,section,x,algorithm,io_accesses,cpu_ms,cpu_ms_min,"
         "cpu_ms_stddev,mem_mb,pairs,loops,seed,scale,git_sha";
}

CsvSink::CsvSink(std::ostream* out, ReportMeta meta)
    : out_(out), meta_(std::move(meta)) {
  *out_ << CsvHeader() << "\n";
}

void CsvSink::AddRow(const ReportRow& row) {
  *out_ << CsvField(row.figure) << ',' << CsvField(row.section) << ','
        << CsvField(row.x) << ',' << CsvField(row.algorithm) << ','
        << row.io_accesses << ',' << Fixed(row.cpu_ms, 3) << ','
        << Fixed(row.cpu_ms_min, 3) << ',' << Fixed(row.cpu_ms_stddev, 3)
        << ',' << Fixed(row.mem_mb, 4) << ',' << row.pairs << ','
        << row.loops << ',' << row.seed << ',' << CsvField(meta_.scale)
        << ',' << CsvField(meta_.git_sha) << "\n";
}

JsonSink::JsonSink(std::ostream* out, ReportMeta meta)
    : out_(out), meta_(std::move(meta)) {}

void JsonSink::AddRow(const ReportRow& row) {
  // Group by figure even if rows interleave — duplicate object keys
  // would make the document ambiguous for the CI gate.
  for (auto& [figure, rows] : figures_) {
    if (figure == row.figure) {
      rows.push_back(row);
      return;
    }
  }
  figures_.emplace_back(row.figure, std::vector<ReportRow>{row});
}

void JsonSink::Close() {
  std::ostream& out = *out_;
  out << "{\n";
  out << "  \"schema\": \"fairmatch-bench/v1\",\n";
  out << "  \"scale\": " << JsonString(meta_.scale) << ",\n";
  out << "  \"git_sha\": " << JsonString(meta_.git_sha) << ",\n";
  out << "  \"repeat\": " << meta_.repeat << ",\n";
  out << "  \"figures\": {";
  for (size_t f = 0; f < figures_.size(); ++f) {
    out << (f == 0 ? "\n" : ",\n");
    out << "    " << JsonString(figures_[f].first) << ": [\n";
    const std::vector<ReportRow>& rows = figures_[f].second;
    for (size_t r = 0; r < rows.size(); ++r) {
      WriteJsonRow(out, rows[r], "      ");
      out << (r + 1 < rows.size() ? ",\n" : "\n");
    }
    out << "    ]";
  }
  out << "\n  }\n}\n";
  out.flush();
}

}  // namespace fairmatch::bench

#include "driver/driver.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <utility>

#include "fairmatch/common/check.h"

namespace fairmatch::bench {

namespace {

template <typename T>
T Median(std::vector<T> values) {
  FAIRMATCH_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  return values[(values.size() - 1) / 2];
}

/// Per-field median: with repeat=1 this is the sample itself; the
/// deterministic fields (io, pairs, loops) are identical across
/// repeats anyway, so the median only smooths cpu_ms and mem_mb. The
/// cpu_ms spread (min + population stddev over the repeat samples)
/// rides along so report artifacts carry reproducible perf deltas.
ReportRow Aggregate(const std::string& figure, const FigureSection& section,
                    const FigureCell& cell, const std::string& algorithm,
                    const std::vector<RunStats>& samples) {
  ReportRow row;
  row.figure = figure;
  row.section = section.key;
  row.x = cell.x;
  row.algorithm = algorithm;
  row.seed = cell.config.seed;
  std::vector<int64_t> io, loops;
  std::vector<double> cpu, mem;
  std::vector<uint64_t> pairs;
  for (const RunStats& s : samples) {
    io.push_back(s.io_accesses);
    loops.push_back(s.loops);
    cpu.push_back(s.cpu_ms);
    mem.push_back(s.peak_memory_mb());
    pairs.push_back(s.pairs);
  }
  row.io_accesses = Median(io);
  row.loops = Median(loops);
  row.cpu_ms = Median(cpu);
  row.mem_mb = Median(mem);
  row.pairs = Median(pairs);
  row.cpu_ms_min = *std::min_element(cpu.begin(), cpu.end());
  double mean = 0.0;
  for (double c : cpu) mean += c;
  mean /= static_cast<double>(cpu.size());
  double var = 0.0;
  for (double c : cpu) var += (c - mean) * (c - mean);
  row.cpu_ms_stddev = std::sqrt(var / static_cast<double>(cpu.size()));
  return row;
}

std::string FigureListing() {
  std::string listing = "registered figures:";
  for (const std::string& name : FigureRegistry::Global().Names()) {
    listing += "\n  " + name;
  }
  return listing;
}

}  // namespace

std::vector<FigurePlan> PlanFigures(const std::vector<std::string>& names,
                                    std::string* error) {
  const FigureRegistry& registry = FigureRegistry::Global();
  std::vector<std::string> selected = names;
  // "all" anywhere in the list selects every registered figure.
  if (selected.empty() ||
      std::find(selected.begin(), selected.end(), "all") != selected.end()) {
    selected = registry.Names();
  }
  std::vector<FigurePlan> plan;
  for (const std::string& name : selected) {
    const FigureSpec* spec = registry.Find(name);
    if (spec == nullptr) {
      *error = "unknown figure '" + name + "'; " + FigureListing();
      return {};
    }
    FigurePlan figure;
    figure.name = name;
    figure.sections = spec->sections();
    // Validate every registry-matcher run before anything executes, so
    // a misconfigured figure is a clean exit, not an abort mid-sweep.
    for (const FigureSection& section : figure.sections) {
      for (const FigureCell& cell : section.cells) {
        for (const MeasuredRun& run : cell.runs) {
          if (run.runner != nullptr) continue;
          const std::string message =
              CheckRunnable(run.algorithm, cell.config);
          if (!message.empty()) {
            *error = "figure '" + name + "': " + message;
            return {};
          }
        }
      }
    }
    plan.push_back(std::move(figure));
  }
  error->clear();
  return plan;
}

void RunPlan(const std::vector<FigurePlan>& plan, int repeat,
             const std::vector<ReportSink*>& sinks,
             std::ostream* progress) {
  FAIRMATCH_CHECK(repeat >= 1);
  // Consecutive cells often share a problem instance (the ablation
  // sweeps options over one instance; multi-algorithm cells always
  // do) — generate once and reuse.
  std::optional<AssignmentProblem> problem;
  BenchConfig generated_config;
  for (const FigurePlan& figure : plan) {
    for (const FigureSection& section : figure.sections) {
      if (progress != nullptr) {
        *progress << "[" << figure.name
                  << (section.key.empty() ? "" : "/" + section.key) << "] "
                  << section.title << std::endl;
      }
      for (ReportSink* sink : sinks) {
        sink->BeginSection(section.title, section.subtitle);
      }
      for (const FigureCell& cell : section.cells) {
        if (!problem.has_value() ||
            !SameProblemInputs(generated_config, cell.config)) {
          problem.emplace(BuildProblem(cell.config));
          generated_config = cell.config;
        }
        for (const MeasuredRun& run : cell.runs) {
          std::vector<RunStats> samples;
          samples.reserve(repeat);
          for (int r = 0; r < repeat; ++r) {
            samples.push_back(run.runner != nullptr
                                  ? run.runner(*problem, cell.config)
                                  : Run(run.algorithm, *problem,
                                        cell.config));
          }
          const ReportRow row =
              Aggregate(figure.name, section, cell, run.algorithm, samples);
          for (ReportSink* sink : sinks) sink->AddRow(row);
        }
      }
    }
  }
  for (ReportSink* sink : sinks) sink->Close();
}

int RunDriver(const DriverOptions& options) {
  if (!options.scale.empty() && !SetScale(options.scale)) {
    std::cerr << "unknown scale '" << options.scale
              << "'; expected paper, quick or smoke\n";
    return 2;
  }
  if (options.repeat < 1) {
    std::cerr << "--repeat must be >= 1\n";
    return 2;
  }
  for (const int threads : options.batch_threads) {
    if (threads < 1) {
      std::cerr << "--threads entries must be >= 1\n";
      return 2;
    }
  }
  if (options.batch_items < 0) {
    std::cerr << "batch_items must be >= 0 (0 = scale default)\n";
    return 2;
  }
  {
    // Fix the batch figure's sweep before figures expand (like the
    // scale above): its sections() closure reads these.
    BatchBenchParams params;
    if (!options.batch_threads.empty()) params.threads = options.batch_threads;
    params.batch_items = options.batch_items;
    SetBatchBenchParams(std::move(params));
  }
  for (const int value : options.serve_lanes) {
    if (value < 1) {
      std::cerr << "--serve-lanes entries must be >= 1\n";
      return 2;
    }
  }
  for (const int value : options.arrival_per_sec) {
    if (value < 1) {
      std::cerr << "--arrival entries must be >= 1\n";
      return 2;
    }
  }
  if (options.serve_requests < 0) {
    std::cerr << "serve_requests must be >= 0 (0 = scale default)\n";
    return 2;
  }
  {
    // Same pre-expansion fixing for the serving figure's sweeps.
    ServeBenchParams params;
    if (!options.serve_lanes.empty()) params.lanes = options.serve_lanes;
    if (!options.arrival_per_sec.empty()) {
      params.arrival_per_sec = options.arrival_per_sec;
    }
    params.requests = options.serve_requests;
    SetServeBenchParams(std::move(params));
  }
  if (options.format != "text" && options.format != "csv" &&
      options.format != "json") {
    std::cerr << "unknown format '" << options.format
              << "'; expected text, csv or json\n";
    return 2;
  }

  std::string error;
  const std::vector<FigurePlan> plan = PlanFigures(options.figures, &error);
  if (!error.empty()) {
    std::cerr << error << "\n";
    return 2;
  }

  const ReportMeta meta{ScaleName(), GitSha(), options.repeat};

  // Assemble the sinks: the primary format to --out (or stdout), plus
  // the optional extra CSV/JSON copies.
  std::vector<std::unique_ptr<std::ofstream>> files;
  auto open = [&files](const std::string& path) -> std::ostream* {
    files.push_back(std::make_unique<std::ofstream>(path));
    return files.back()->is_open() ? files.back().get() : nullptr;
  };
  std::vector<std::unique_ptr<ReportSink>> owned;
  std::vector<ReportSink*> sinks;
  auto add = [&](const std::string& format,
                 std::ostream* out) -> std::unique_ptr<ReportSink> {
    if (format == "csv") return std::make_unique<CsvSink>(out, meta);
    if (format == "json") return std::make_unique<JsonSink>(out, meta);
    return std::make_unique<TextSink>(out, meta);
  };

  std::ostream* primary = &std::cout;
  if (!options.out_path.empty()) {
    primary = open(options.out_path);
    if (primary == nullptr) {
      std::cerr << "cannot open --out path '" << options.out_path << "'\n";
      return 1;
    }
  }
  owned.push_back(add(options.format, primary));
  if (!options.csv_path.empty()) {
    std::ostream* out = open(options.csv_path);
    if (out == nullptr) {
      std::cerr << "cannot open --csv path '" << options.csv_path << "'\n";
      return 1;
    }
    owned.push_back(add("csv", out));
  }
  if (!options.json_path.empty()) {
    std::ostream* out = open(options.json_path);
    if (out == nullptr) {
      std::cerr << "cannot open --json path '" << options.json_path
                << "'\n";
      return 1;
    }
    owned.push_back(add("json", out));
  }
  for (const auto& sink : owned) sinks.push_back(sink.get());

  // Progress narration on stderr, unless the primary format already
  // streams to the terminal.
  std::ostream* progress =
      (primary == &std::cout && options.format == "text") ? nullptr
                                                          : &std::cerr;
  RunPlan(plan, options.repeat, sinks, progress);

  for (const auto& file : files) {
    // Not every sink flushes as it writes (CsvSink buffers); force the
    // data out before judging stream health, or a full disk exits 0.
    file->flush();
    if (!file->good()) {
      std::cerr << "write failure on an output file\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace fairmatch::bench

// The recovery_time figure: restart cost of the durable epoch layer
// (src/fairmatch/recover/) and the snapshot-threshold knob that trades
// steady-state checkpoint work against it.
//
// No crash is staged: Recover() from a healthy log directory walks the
// exact code path a crashed restart walks (manifest election, snapshot
// load, WAL replay through a fresh DeltaBuilder), so a clean shutdown
// measures the same work a SIGKILL recovery performs. Two sections:
//
//   replay     x = WAL records since the last snapshot (threshold set
//              so no checkpoint ever fires; every batch is replayed)
//   threshold  x = snapshot_threshold over a fixed 12-batch trace
//              (small thresholds checkpoint often, shrinking the
//              replayed suffix and the restart time)
//
// Rows per cell:
//
//   recover:time_to_serving_ms   wall ms of Recover() — manifest read
//                                through replayed, serveable epoch
//   recover:replay_records_per_s WAL records replayed per second
//   state:recovered              cpu_ms = replay phase ms
//   state:uncrashed              cpu_ms = total live Apply() ms
//
// The deterministic columns are the CI hook (checked by
// .github/check_bench_report.py): every row carries the replayed
// record count in `io_accesses` and the recovered (resp. uncrashed)
// epoch's digest — skyline + SB matching, 48 bits — in `loops` with
// the matching size in `pairs`. state:recovered must equal
// state:uncrashed on both digest columns in every cell — the
// restart-equals-no-crash differential on the report surface — and in
// the replay section the replayed count must equal the cell's x.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <dirent.h>
#include <stdlib.h>
#include <unistd.h>
#endif

#include "driver/figure_registry.h"
#include "fairmatch/common/check.h"
#include "fairmatch/common/rng.h"
#include "fairmatch/common/timer.h"
#include "fairmatch/recover/durable_builder.h"
#include "fairmatch/serve/dataset_registry.h"
#include "fairmatch/update/delta_builder.h"
#include "fairmatch/update/stream_matcher.h"

namespace fairmatch::bench {

namespace {

constexpr int kThresholdTraceSteps = 12;

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

/// Digest of what an epoch serves: epoch number, maintained skyline,
/// SB matching. 48 bits so the JSON report's double-typed `loops`
/// column holds it exactly.
struct EpochDigest {
  int64_t digest = 0;
  size_t pairs = 0;
};

EpochDigest DigestEpoch(const serve::ResidentDataset& dataset) {
  uint64_t h = 1469598103934665603ull;
  h = Fnv1a(h, static_cast<uint64_t>(dataset.epoch()));
  for (const ObjectRecord& m : dataset.skyline()) {
    h = Fnv1a(h, static_cast<uint64_t>(m.id));
  }
  const AssignResult sb = update::RunOnDataset(dataset, "SB");
  FAIRMATCH_CHECK(sb.status.ok());
  for (const MatchPair& p : sb.matching) {
    h = Fnv1a(h, static_cast<uint64_t>(p.fid));
    h = Fnv1a(h, static_cast<uint64_t>(p.oid));
  }
  EpochDigest out;
  out.digest = static_cast<int64_t>(h & ((1ull << 48) - 1));
  out.pairs = sb.matching.size();
  return out;
}

std::string MakeLogDir() {
#if defined(__unix__) || defined(__APPLE__)
  char tmpl[] = "/tmp/fairmatch_recovery_XXXXXX";
  const char* made = mkdtemp(tmpl);
  if (made != nullptr) return std::string(made);
#endif
  const std::string fallback = "fairmatch_recovery_bench";
  return fallback;
}

void RemoveLogDir(const std::string& dir) {
#if defined(__unix__) || defined(__APPLE__)
  DIR* d = opendir(dir.c_str());
  if (d != nullptr) {
    while (dirent* entry = readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      std::remove((dir + "/" + name).c_str());
    }
    closedir(d);
  }
  rmdir(dir.c_str());
#endif
}

/// Half deletes + half inserts (update_figure.cc's generator): the
/// object count is back where it started after every batch.
update::UpdateBatch SeededBatch(const AssignmentProblem& problem,
                                int batch_size, Rng* rng) {
  update::UpdateBatch batch;
  const int num_objects = static_cast<int>(problem.objects.size());
  const int half = std::max(1, batch_size / 2);
  std::vector<bool> picked(num_objects, false);
  while (static_cast<int>(batch.delete_objects.size()) <
         std::min(half, num_objects - 1)) {
    const int id = static_cast<int>(rng->UniformInt(0, num_objects - 1));
    if (picked[id]) continue;
    picked[id] = true;
    batch.delete_objects.push_back(id);
  }
  for (int i = 0; i < half; ++i) {
    ObjectItem o;
    o.point = Point(problem.dims);
    for (int d = 0; d < problem.dims; ++d) {
      o.point[d] = static_cast<float>(rng->Uniform());
    }
    batch.insert_objects.push_back(o);
  }
  return batch;
}

struct RecoveryExperiment {
  double apply_ms = 0.0;    // live Apply() total, uncrashed run
  double recover_ms = 0.0;  // Recover() wall: manifest -> serveable
  recover::RecoveryStats stats;
  EpochDigest uncrashed;
  EpochDigest recovered;
};

RecoveryExperiment RunRecoveryExperiment(const AssignmentProblem& problem,
                                         const BenchConfig& config,
                                         int batches, int threshold) {
  RecoveryExperiment result;
  const std::string dir = MakeLogDir();

  recover::DurableOptions options;
  options.dir = dir;
  options.snapshot_threshold = threshold;

  serve::DatasetRegistry registry;
  serve::DatasetHandle base = registry.Open("bench", problem);
  std::unique_ptr<recover::DurableBuilder> builder;
  serve::ServeStatus status =
      recover::DurableBuilder::Bootstrap(base, options, &builder);
  FAIRMATCH_CHECK(status.ok());

  Rng rng(config.seed ^ (static_cast<uint64_t>(batches) << 16) ^
          (static_cast<uint64_t>(threshold) << 32));
  const int batch_size = Scaled(100, 8);
  for (int i = 0; i < batches; ++i) {
    const update::UpdateBatch batch =
        SeededBatch(builder->current()->problem(), batch_size, &rng);
    Timer timer;
    status = builder->Apply(batch);
    result.apply_ms += timer.ElapsedMs();
    FAIRMATCH_CHECK(status.ok());
  }
  result.uncrashed = DigestEpoch(*builder->current());
  builder.reset();  // clean shutdown; the log directory stays

  Timer timer;
  status = recover::DurableBuilder::Recover(options, &builder, &result.stats);
  result.recover_ms = timer.ElapsedMs();
  FAIRMATCH_CHECK(status.ok());
  result.recovered = DigestEpoch(*builder->current());
  builder.reset();
  RemoveLogDir(dir);
  return result;
}

/// Repeat-aware shared experiment per cell (serve_figure.cc pattern).
struct ExperimentCache {
  std::vector<RecoveryExperiment> samples;
};

const RecoveryExperiment& SampleFor(
    const std::shared_ptr<ExperimentCache>& cache,
    const std::shared_ptr<size_t>& cursor, const AssignmentProblem& problem,
    const BenchConfig& config, int batches, int threshold) {
  const size_t index = (*cursor)++;
  while (cache->samples.size() <= index) {
    cache->samples.push_back(
        RunRecoveryExperiment(problem, config, batches, threshold));
  }
  return cache->samples[index];
}

void AppendCell(FigureSection* section, const BenchConfig& shape,
                const std::string& x, int batches, int threshold) {
  FigureCell cell;
  cell.x = x;
  cell.config = shape;
  auto cache = std::make_shared<ExperimentCache>();

  struct Row {
    const char* name;
    double (*value)(const RecoveryExperiment&);
    const EpochDigest& (*digest)(const RecoveryExperiment&);
  };
  const Row kRows[] = {
      {"recover:time_to_serving_ms",
       [](const RecoveryExperiment& e) { return e.recover_ms; },
       [](const RecoveryExperiment& e) -> const EpochDigest& {
         return e.recovered;
       }},
      {"recover:replay_records_per_s",
       [](const RecoveryExperiment& e) {
         return e.stats.replay_ms > 0.0
                    ? 1000.0 * e.stats.wal_records_replayed /
                          e.stats.replay_ms
                    : 0.0;
       },
       [](const RecoveryExperiment& e) -> const EpochDigest& {
         return e.recovered;
       }},
      {"state:recovered",
       [](const RecoveryExperiment& e) { return e.stats.replay_ms; },
       [](const RecoveryExperiment& e) -> const EpochDigest& {
         return e.recovered;
       }},
      {"state:uncrashed",
       [](const RecoveryExperiment& e) { return e.apply_ms; },
       [](const RecoveryExperiment& e) -> const EpochDigest& {
         return e.uncrashed;
       }},
  };
  for (const Row& row : kRows) {
    MeasuredRun run;
    run.algorithm = row.name;
    auto cursor = std::make_shared<size_t>(0);
    const char* name = row.name;
    auto value = row.value;
    auto digest = row.digest;
    run.runner = [cache, cursor, name, value, digest, batches, threshold](
                     const AssignmentProblem& problem,
                     const BenchConfig& config) {
      const RecoveryExperiment& sample =
          SampleFor(cache, cursor, problem, config, batches, threshold);
      RunStats stats;
      stats.algorithm = name;
      stats.cpu_ms = value(sample);
      stats.io_accesses = sample.stats.wal_records_replayed;
      const EpochDigest& d = digest(sample);
      stats.pairs = d.pairs;
      stats.loops = d.digest;
      return stats;
    };
    cell.runs.push_back(std::move(run));
  }
  section->cells.push_back(std::move(cell));
}

std::vector<FigureSection> RecoveryTime() {
  BenchConfig shape;
  shape.num_functions = 300;
  shape.num_objects = 8000;
  shape.dims = 3;
  shape = Scale(shape);

  FigureSection replay;
  replay.key = "replay";
  replay.title = "Restart cost vs WAL records since the last snapshot";
  replay.subtitle =
      "x = update batches in the WAL suffix (snapshot threshold "
      "disabled, every batch replays on restart); io = records "
      "replayed (== x), pairs/loops = matching size + epoch digest — "
      "state:recovered must equal state:uncrashed in every cell";
  for (const int batches : {4, 8, 16}) {
    AppendCell(&replay, shape, std::to_string(batches), batches,
               /*threshold=*/1 << 20);
  }

  FigureSection threshold;
  threshold.key = "threshold";
  threshold.title = "The snapshot-threshold knob over a fixed trace";
  threshold.subtitle =
      "x = snapshot_threshold over a " +
      std::to_string(kThresholdTraceSteps) +
      "-batch trace (small thresholds checkpoint often and shrink the "
      "replayed suffix); columns as in the replay section";
  for (const int t : {2, 5, 1 << 20}) {
    AppendCell(&threshold, shape,
               t == (1 << 20) ? "off" : std::to_string(t),
               kThresholdTraceSteps, t);
  }
  return {std::move(replay), std::move(threshold)};
}

}  // namespace

void RegisterRecoveryFigure(FigureRegistry* registry) {
  FigureSpec spec;
  spec.name = "recovery_time";
  spec.description =
      "durable-epoch restart: recovery time vs WAL suffix length and "
      "the snapshot-threshold knob, with recovered-vs-uncrashed epoch "
      "digests";
  spec.sections = RecoveryTime;
  registry->Register(std::move(spec));
}

}  // namespace fairmatch::bench

// Packed function-list figures: the target experiments for the packed
// memory-mapped backend (topk/packed_function_lists.h).
//
//   micro_packed_probe — the TA reverse top-1 drain over the three
//     function-index backends at growing |F|: "lists" (in-memory
//     FunctionLists), "packed" (packed image, default entry-at-a-time
//     traversal) and "packed-impact" (packed image consumed block-wise
//     in descending max-impact order). The first two perform the
//     byte-identical probe sequence (io = probes, loops = restarts are
//     equal rows — the report gate cross-checks them); packed-impact
//     changes the probe granularity but must drain the identical
//     assignments (pairs).
//   scale_sweep — the paper-size-and-beyond sweep: x multiplies the
//     paper's |F| by 1/8/32 and compares the disk-resident
//     DiskFunctionStore baseline against the packed store (in-memory
//     image and mmap placement) on the same full drain. pairs is
//     identical across rows per x (gate-checked); cpu_ms and the
//     honest per-backend footprint (mem_mb) are the figure: both must
//     grow sublinearly for the packed rows relative to the disk store.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "driver/figure_registry.h"
#include "fairmatch/common/timer.h"
#include "fairmatch/engine/exec_context.h"
#include "fairmatch/storage/disk_manager.h"
#include "fairmatch/topk/disk_function_lists.h"
#include "fairmatch/topk/function_lists.h"
#include "fairmatch/topk/packed_function_lists.h"
#include "fairmatch/topk/reverse_top1.h"

namespace fairmatch::bench {

namespace {

/// The shared drain workload: assign every function through resumable
/// Best() calls from a rotating pool of query objects (the SB usage
/// pattern), so every backend performs the same logical work and
/// produces the same number of completed assignments.
struct DrainResult {
  uint64_t assignments = 0;
  int64_t probes = 0;
  int64_t restarts = 0;
  size_t state_bytes = 0;
};

DrainResult DrainAllFunctions(FunctionIndexBase* index,
                              const AssignmentProblem& problem,
                              bool impact_ordered) {
  ReverseTop1Options options;
  options.impact_ordered = impact_ordered;
  ReverseTop1 rt1(index, options);
  std::vector<uint8_t> assigned(problem.functions.size(), 0);
  int64_t remaining = static_cast<int64_t>(problem.functions.size());
  const size_t nq =
      std::min<size_t>(64, std::max<size_t>(1, problem.objects.size()));
  std::vector<ReverseTop1State> states(nq);
  DrainResult result;
  size_t i = 0;
  while (remaining > 0) {
    const size_t q = i++ % nq;
    auto best =
        rt1.Best(&states[q], problem.objects[q].point, assigned, remaining);
    if (!best.has_value()) break;
    assigned[best->first] = 1;
    remaining--;
    result.assignments++;
  }
  result.probes = rt1.probes();
  result.restarts = rt1.restarts();
  for (const ReverseTop1State& s : states) result.state_bytes += s.memory_bytes();
  return result;
}

// --- micro_packed_probe ----------------------------------------------

RunStats RunMicroPackedProbe(const AssignmentProblem& problem,
                             const std::string& backend) {
  Timer timer;
  RunStats stats;
  stats.algorithm = backend;
  std::optional<FunctionLists> lists;
  std::optional<PackedFunctionStore> packed;
  FunctionIndexBase* index;
  size_t index_bytes;
  if (backend == "lists") {
    lists.emplace(&problem.functions);
    index = &*lists;
    index_bytes = lists->memory_bytes();
  } else {
    packed.emplace(problem.functions);
    index = &*packed;
    index_bytes = packed->footprint_bytes();
  }
  const DrainResult drain =
      DrainAllFunctions(index, problem, backend == "packed-impact");
  stats.cpu_ms = timer.ElapsedMs();
  stats.io_accesses = drain.probes;
  stats.loops = drain.restarts;
  stats.pairs = drain.assignments;
  stats.peak_memory_bytes = index_bytes + drain.state_bytes;
  return stats;
}

std::vector<FigureSection> MicroPackedProbe() {
  FigureSection s;
  s.title = "Micro: packed-list reverse top-1 drain";
  s.subtitle =
      "full drain, 64 resumable query states, x = |F| "
      "(io = probes, loops = restarts; lists == packed per column, "
      "packed-impact equal pairs)";
  for (int nf : {1000, 5000, 20000}) {
    BenchConfig config;
    config.num_functions = nf;
    config.num_objects = 1000;
    config = Scale(config);
    std::vector<MeasuredRun> runs;
    for (const char* backend : {"lists", "packed", "packed-impact"}) {
      MeasuredRun run;
      run.algorithm = backend;
      const std::string b = backend;
      run.runner = [b](const AssignmentProblem& problem, const BenchConfig&) {
        return RunMicroPackedProbe(problem, b);
      };
      runs.push_back(std::move(run));
    }
    s.cells.push_back({std::to_string(nf), config, nullptr, std::move(runs)});
  }
  return {s};
}

// --- scale_sweep -----------------------------------------------------

/// Honest resident footprint of the disk-store baseline: the on-disk
/// list pages plus everything it keeps in memory to serve queries (LRU
/// frames at the configured fraction, the per-(dim, fid) position map,
/// gamma/capacity metadata).
size_t DiskStoreFootprint(DiskFunctionStore* store, double buffer_fraction) {
  const size_t n = static_cast<size_t>(store->size());
  const size_t d = static_cast<size_t>(store->dims());
  size_t bytes = static_cast<size_t>(store->num_pages()) * sizeof(PageData);
  bytes += static_cast<size_t>(buffer_fraction *
                               static_cast<double>(store->num_pages())) *
           sizeof(PageData);
  bytes += n * d * sizeof(int32_t);                // position map
  bytes += n * (sizeof(double) + sizeof(int));     // gamma + capacity
  return bytes;
}

RunStats RunScaleSweep(const AssignmentProblem& problem,
                       const BenchConfig& config,
                       const std::string& backend) {
  RunStats stats;
  stats.algorithm = backend;
  if (backend == "disk-store") {
    ExecContext ctx;
    DiskFunctionStore store(problem.functions, config.buffer_fraction,
                            &ctx.counters());
    ctx.BeginRun();
    const DrainResult drain = DrainAllFunctions(&store, problem,
                                                /*impact_ordered=*/false);
    stats.pairs = drain.assignments;
    stats.loops = drain.restarts;
    ctx.memory().Set(DiskStoreFootprint(&store, config.buffer_fraction) +
                     drain.state_bytes);
    ctx.Finish(&stats);
    return stats;
  }
  Timer timer;
  PackedStoreOptions opts;
  opts.use_mmap = backend == "packed-mmap";
  PackedFunctionStore store(problem.functions, opts);
  const DrainResult drain = DrainAllFunctions(&store, problem,
                                              /*impact_ordered=*/true);
  stats.cpu_ms = timer.ElapsedMs();
  stats.pairs = drain.assignments;
  stats.loops = drain.restarts;
  stats.io_accesses = 0;  // queried in place, no counted I/O
  stats.peak_memory_bytes = store.footprint_bytes() + drain.state_bytes;
  return stats;
}

std::vector<FigureSection> ScaleSweep() {
  FigureSection s;
  s.title = "Scale sweep: function-store backends beyond paper size";
  s.subtitle =
      "full drain, x = |F| multiplier over the paper's 5000 "
      "(pairs identical across rows; cpu_ms and footprint are the "
      "figure)";
  for (int mult : {1, 8, 32}) {
    BenchConfig config;
    config.num_functions = 5000 * mult;
    config.num_objects = 2000;
    config = Scale(config);
    std::vector<MeasuredRun> runs;
    for (const char* backend : {"disk-store", "packed", "packed-mmap"}) {
      MeasuredRun run;
      run.algorithm = backend;
      const std::string b = backend;
      run.runner = [b](const AssignmentProblem& problem,
                       const BenchConfig& c) {
        return RunScaleSweep(problem, c, b);
      };
      runs.push_back(std::move(run));
    }
    s.cells.push_back(
        {std::to_string(mult) + "x", config, nullptr, std::move(runs)});
  }
  return {s};
}

}  // namespace

void RegisterPackedFigures(FigureRegistry* registry) {
  FigureSpec probe;
  probe.name = "micro_packed_probe";
  probe.description =
      "Microbench: TA drain across function-index backends "
      "(lists / packed / packed impact-ordered)";
  probe.sections = MicroPackedProbe;
  registry->Register(std::move(probe));

  FigureSpec sweep;
  sweep.name = "scale_sweep";
  sweep.description =
      "Packed vs disk-resident function store at 1-32x paper |F| "
      "(cpu and footprint scaling)";
  sweep.sections = ScaleSweep;
  registry->Register(std::move(sweep));
}

}  // namespace fairmatch::bench

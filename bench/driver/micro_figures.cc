// Micro figures: registry entries that isolate the optimized inner
// loops (the TA reverse top-1 probe loop, BBS/UpdateSkyline, the SIMD
// scoring kernel and the buffer pool) so the perf trajectory of the
// hot-path work stays CI-visible in BENCH_<scale>.json — the
// regression gate diffs their deterministic columns across commits
// alongside the paper figures.
//
// Unlike the paper figures these cells do not run a whole matcher; the
// custom runners drive the component directly but report through the
// same RunStats columns:
//
//   micro_reverse_top1 — io = sorted-list probes, loops = Omega
//     restarts, pairs = completed Best() assignments.
//   micro_bbs — io = counted R-tree node reads (paged store), loops =
//     RemoveAndUpdate rounds, pairs = skyline members drained.
//   micro_simd_score — old (scalar) vs new (vector) block-scoring
//     kernel on one member block; io = scored (member, function)
//     pairs, pairs = best-candidate updates, loops = functions. The
//     deterministic columns are backend-independent (the kernels are
//     bit-identical), which the regression gate cross-checks between
//     the SIMD and scalar CI builds.
//   micro_buffer_pool — old (list + unordered_map) vs new (sharded
//     open-addressing + intrusive LRU) pool on one seeded fetch
//     sequence per hit/miss mix; io = physical reads + writes, pairs =
//     fetches, loops = buffer hits — identical for both
//     implementations, so only cpu_ms separates the rows.
#include <algorithm>
#include <cstring>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "driver/figure_registry.h"
#include "fairmatch/common/rng.h"
#include "fairmatch/common/simd.h"
#include "fairmatch/common/timer.h"
#include "fairmatch/engine/exec_context.h"
#include "fairmatch/rtree/node_store.h"
#include "fairmatch/skyline/bbs.h"
#include "fairmatch/storage/buffer_pool.h"
#include "fairmatch/storage/disk_manager.h"
#include "fairmatch/topk/function_lists.h"
#include "fairmatch/topk/reverse_top1.h"

namespace fairmatch::bench {

namespace {

// Drains the whole function set through resumable Best() calls from a
// rotating pool of query objects — the exact usage pattern SB's loop
// produces (interleaved queries and assignments).
RunStats RunMicroReverseTop1(const AssignmentProblem& problem,
                             bool biased) {
  Timer timer;
  RunStats stats;
  stats.algorithm = biased ? "TA-biased" : "TA-round-robin";
  FunctionLists lists(&problem.functions);
  ReverseTop1Options options;
  options.biased_probing = biased;
  ReverseTop1 rt1(&lists, options);
  std::vector<uint8_t> assigned(problem.functions.size(), 0);
  int64_t remaining = static_cast<int64_t>(problem.functions.size());
  const size_t nq =
      std::min<size_t>(64, std::max<size_t>(1, problem.objects.size()));
  std::vector<ReverseTop1State> states(nq);
  size_t i = 0;
  while (remaining > 0) {
    const size_t q = i++ % nq;
    auto best =
        rt1.Best(&states[q], problem.objects[q].point, assigned, remaining);
    if (!best.has_value()) break;
    assigned[best->first] = 1;
    remaining--;
    stats.pairs++;
  }
  stats.cpu_ms = timer.ElapsedMs();
  stats.io_accesses = rt1.probes();
  stats.loops = rt1.restarts();
  size_t state_bytes = lists.memory_bytes();
  for (const ReverseTop1State& s : states) state_bytes += s.memory_bytes();
  stats.peak_memory_bytes = state_bytes;
  return stats;
}

// Full BBS + UpdateSkyline drain over a paged (counted-I/O) object
// tree: compute the initial skyline, then repeatedly remove every
// member until the tree is exhausted — the skyline-maintenance work an
// entire assignment performs, without the TA/pairing layers.
RunStats RunMicroBbs(const AssignmentProblem& problem,
                     const BenchConfig& config) {
  ExecContext ctx;
  PagedNodeStore store(problem.dims, 4096, &ctx.counters());
  RTree tree(&store);
  BuildObjectTree(problem, &tree);
  store.ResetCounters();  // exclude the build phase
  store.SetBufferFraction(config.buffer_fraction);
  ctx.BeginRun();
  RunStats stats;
  stats.algorithm = "UpdateSkyline";
  SkylineManager mgr(&tree);
  mgr.ComputeInitial();
  std::vector<ObjectId> victims;
  while (mgr.skyline().size() > 0) {
    stats.loops++;
    victims.clear();
    mgr.skyline().ForEach(
        [&](int, const SkylineObject& m) { victims.push_back(m.id); });
    stats.pairs += victims.size();
    mgr.RemoveAndUpdate(victims);
    ctx.memory().Set(mgr.memory_bytes());
  }
  ctx.Finish(&stats);
  return stats;
}

// The SB-alt scoring inner loop in isolation: one member block scored
// against every function's effective-coefficient vector, tracking each
// member's best candidate with the engine's tie rule. The "scalar" row
// is the old kernel — the member-major (row per member) loop SB-alt
// ran before the SoA rewrite, which neither the compiler nor hardware
// can vectorize across members; the "simd" row is the new dim-major
// block kernel (common/simd.h, whatever backend this binary compiled
// in — the scalar fallback in a FAIRMATCH_SIMD=OFF build). Scores are
// bit-identical (same per-member ascending-dimension accumulation), so
// the deterministic columns (pairs = best updates) double as a
// cross-backend parity check the report gate diffs between the SIMD
// and scalar CI builds.
RunStats RunMicroSimdScore(const AssignmentProblem& problem,
                           bool block_kernel) {
  Timer timer;
  RunStats stats;
  stats.algorithm = block_kernel ? "simd" : "scalar";
  const int dims = problem.dims;
  const int members =
      static_cast<int>(std::min<size_t>(256, problem.objects.size()));
  // Both layouts of the same block: rows for the old kernel, dim-major
  // columns for the new one.
  std::vector<float> rows(static_cast<size_t>(members) * dims);
  std::vector<float> cols(static_cast<size_t>(dims) * members);
  for (int j = 0; j < members; ++j) {
    for (int d = 0; d < dims; ++d) {
      const float v = problem.objects[j].point[d];
      rows[static_cast<size_t>(j) * dims + d] = v;
      cols[static_cast<size_t>(d) * members + j] = v;
    }
  }
  std::vector<double> weights(dims);
  std::vector<double> scores(members);
  std::vector<FunctionId> best_f(members, kInvalidFunction);
  std::vector<double> best_s(members, 0.0);
  for (const PrefFunction& f : problem.functions) {
    stats.loops++;
    for (int d = 0; d < dims; ++d) weights[d] = f.eff(d);
    if (block_kernel) {
      simd::ScoreColumns(cols.data(), members, dims, weights.data(),
                         members, scores.data());
    } else {
      for (int j = 0; j < members; ++j) {
        const float* pt = &rows[static_cast<size_t>(j) * dims];
        double s = 0.0;
        for (int d = 0; d < dims; ++d) s += weights[d] * pt[d];
        scores[j] = s;
      }
    }
    stats.io_accesses += members;
    for (int j = 0; j < members; ++j) {
      if (best_f[j] == kInvalidFunction || scores[j] > best_s[j] ||
          (scores[j] == best_s[j] && f.id < best_f[j])) {
        best_f[j] = f.id;
        best_s[j] = scores[j];
        stats.pairs++;
      }
    }
  }
  stats.cpu_ms = timer.ElapsedMs();
  stats.peak_memory_bytes =
      (rows.size() + cols.size()) * sizeof(float) +
      members * (sizeof(double) * 2 + sizeof(FunctionId));
  return stats;
}

// The seed's list + unordered_map LRU pool, kept verbatim as the
// microbench baseline so the report keeps measuring the fetch-hit cost
// the sharded open-addressing pool replaced. Same counted semantics:
// identical page_reads/page_writes/buffer_hits on any access sequence.
class ListMapLruPool {
 public:
  ListMapLruPool(DiskManager* disk, size_t capacity, PerfCounters* counters)
      : disk_(disk), capacity_(capacity), counters_(counters) {}

  std::byte* Fetch(PageId pid) {
    counters_->logical_reads++;
    auto it = frames_.find(pid);
    if (it != frames_.end()) {
      counters_->buffer_hits++;
      Frame& frame = it->second;
      if (frame.in_lru) {
        lru_.erase(frame.lru_pos);
        frame.in_lru = false;
      }
      frame.pin_count++;
      return frame.data->bytes;
    }
    counters_->page_reads++;
    Frame frame;
    frame.data = std::make_unique<PageData>();
    disk_->ReadPage(pid, frame.data->bytes);
    frame.pin_count = 1;
    auto [ins, ok] = frames_.emplace(pid, std::move(frame));
    (void)ok;
    EvictIfNeeded();
    return ins->second.data->bytes;
  }

  void Unpin(PageId pid, bool dirty) {
    Frame& frame = frames_.at(pid);
    frame.pin_count--;
    if (dirty) frame.dirty = true;
    if (frame.pin_count == 0) {
      frame.lru_pos = lru_.insert(lru_.end(), pid);
      frame.in_lru = true;
      EvictIfNeeded();
    }
  }

 private:
  struct Frame {
    std::unique_ptr<PageData> data;
    int pin_count = 0;
    bool dirty = false;
    std::list<PageId>::iterator lru_pos;
    bool in_lru = false;
  };

  void EvictIfNeeded() {
    while (frames_.size() > capacity_ && !lru_.empty()) {
      PageId victim = lru_.front();
      lru_.pop_front();
      auto it = frames_.find(victim);
      it->second.in_lru = false;
      if (it->second.dirty) {
        counters_->page_writes++;
        disk_->WritePage(victim, it->second.data->bytes);
      }
      frames_.erase(it);
    }
  }

  DiskManager* disk_;
  size_t capacity_;
  PerfCounters* counters_;
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;
};

// One seeded fetch sequence (uniform page picks, every seventh access
// a dirty write) against a pool sized for the given hit mix. Both pool
// implementations replay the identical sequence on an identical disk,
// so every deterministic column matches and cpu_ms isolates the frame
// table + LRU overhead.
RunStats RunMicroBufferPool(bool sharded, double capacity_fraction) {
  constexpr int kPages = 256;
  const int accesses = Scaled(400000, 2000);
  const size_t capacity =
      static_cast<size_t>(kPages * capacity_fraction + 0.5);

  DiskManager disk;
  PerfCounters counters;
  std::vector<PageId> pids;
  pids.reserve(kPages);
  for (int i = 0; i < kPages; ++i) pids.push_back(disk.AllocatePage());

  RunStats stats;
  stats.algorithm = sharded ? "sharded" : "list-map";
  Rng rng(4242);
  Timer timer;
  if (sharded) {
    BufferPool pool(&disk, capacity, &counters);
    for (int i = 0; i < accesses; ++i) {
      PageHandle h = pool.FetchPage(pids[rng.UniformInt(0, kPages - 1)]);
      if (i % 7 == 0) h.mutable_bytes()[0] = std::byte{1};
    }
  } else {
    ListMapLruPool pool(&disk, capacity, &counters);
    for (int i = 0; i < accesses; ++i) {
      const PageId pid = pids[rng.UniformInt(0, kPages - 1)];
      std::byte* bytes = pool.Fetch(pid);
      const bool dirty = i % 7 == 0;
      if (dirty) bytes[0] = std::byte{1};
      pool.Unpin(pid, dirty);
    }
  }
  stats.cpu_ms = timer.ElapsedMs();
  stats.io_accesses = counters.page_reads + counters.page_writes;
  stats.pairs = static_cast<uint64_t>(accesses);
  stats.loops = counters.buffer_hits;
  stats.peak_memory_bytes = capacity * sizeof(PageData);
  return stats;
}

std::vector<FigureSection> MicroSimdScore() {
  FigureSection s;
  s.title = "Micro: SIMD member-block scoring";
  s.subtitle =
      std::string("SoA member block (<=256) x |F| functions, backend=") +
      simd::BackendName() +
      ", x = D (io = scored pairs, pairs = best updates)";
  for (int dims : {3, 4, 5}) {
    BenchConfig config;
    config.dims = dims;
    config.num_functions = 20000;
    config.num_objects = 1000;
    config = Scale(config);
    std::vector<MeasuredRun> runs;
    for (bool block_kernel : {false, true}) {
      MeasuredRun run;
      run.algorithm = block_kernel ? "simd" : "scalar";
      run.runner = [block_kernel](const AssignmentProblem& problem,
                                  const BenchConfig&) {
        return RunMicroSimdScore(problem, block_kernel);
      };
      runs.push_back(std::move(run));
    }
    s.cells.push_back(
        {std::to_string(dims), config, nullptr, std::move(runs)});
  }
  return {s};
}

std::vector<FigureSection> MicroBufferPool() {
  FigureSection s;
  s.title = "Micro: buffer pool fetch/unpin";
  s.subtitle =
      "256-page disk, seeded uniform fetches, x = hit mix "
      "(io = physical reads+writes, loops = hits)";
  // Hit mixes: all-resident (pure hit cost), half-sized buffer
  // (eviction churn), and the paper's 0% buffer (every fetch a miss).
  const std::pair<const char*, double> mixes[] = {
      {"hit", 1.0}, {"mix", 0.5}, {"miss", 0.0}};
  for (const auto& [label, fraction] : mixes) {
    BenchConfig config;
    config.num_functions = 10;
    config.num_objects = 100;
    config = Scale(config);
    std::vector<MeasuredRun> runs;
    for (bool sharded : {false, true}) {
      MeasuredRun run;
      run.algorithm = sharded ? "sharded" : "list-map";
      const double f = fraction;
      run.runner = [sharded, f](const AssignmentProblem&,
                                const BenchConfig&) {
        return RunMicroBufferPool(sharded, f);
      };
      runs.push_back(std::move(run));
    }
    s.cells.push_back({label, config, nullptr, std::move(runs)});
  }
  return {s};
}

std::vector<FigureSection> MicroReverseTop1() {
  FigureSection s;
  s.title = "Micro: TA reverse top-1 drain";
  s.subtitle =
      "in-memory lists, 64 resumable query states, x = |F| "
      "(io = probes, loops = restarts)";
  for (int nf : {1000, 5000, 20000}) {
    BenchConfig config;
    config.num_functions = nf;
    config.num_objects = 1000;
    config = Scale(config);
    std::vector<MeasuredRun> runs;
    for (bool biased : {true, false}) {
      MeasuredRun run;
      run.algorithm = biased ? "TA-biased" : "TA-round-robin";
      run.runner = [biased](const AssignmentProblem& problem,
                            const BenchConfig&) {
        return RunMicroReverseTop1(problem, biased);
      };
      runs.push_back(std::move(run));
    }
    s.cells.push_back({std::to_string(nf), config, nullptr, std::move(runs)});
  }
  return {s};
}

std::vector<FigureSection> MicroBbs() {
  FigureSection s;
  s.title = "Micro: BBS + UpdateSkyline full drain";
  s.subtitle =
      "paged object tree, remove-all loop until empty, x = |O| "
      "(io = node reads, pairs = members drained)";
  for (int no : {20000, 100000}) {
    BenchConfig config;
    config.num_objects = no;
    config.num_functions = 10;  // unused by the runner; keep generation cheap
    config = Scale(config);
    MeasuredRun run;
    run.algorithm = "UpdateSkyline";
    run.runner = [](const AssignmentProblem& problem,
                    const BenchConfig& c) {
      return RunMicroBbs(problem, c);
    };
    s.cells.push_back({std::to_string(no), config, nullptr, {std::move(run)}});
  }
  return {s};
}

}  // namespace

void RegisterMicroFigures(FigureRegistry* registry) {
  FigureSpec rt1;
  rt1.name = "micro_reverse_top1";
  rt1.description =
      "Microbench: TA reverse top-1 inner loop (flat candidate heap)";
  rt1.sections = MicroReverseTop1;
  registry->Register(std::move(rt1));

  FigureSpec bbs;
  bbs.name = "micro_bbs";
  bbs.description =
      "Microbench: BBS/UpdateSkyline drain (arena-backed plists)";
  bbs.sections = MicroBbs;
  registry->Register(std::move(bbs));

  FigureSpec score;
  score.name = "micro_simd_score";
  score.description =
      "Microbench: member-block scoring kernel, scalar vs SIMD";
  score.sections = MicroSimdScore;
  registry->Register(std::move(score));

  FigureSpec pool;
  pool.name = "micro_buffer_pool";
  pool.description =
      "Microbench: buffer pool fetch/unpin, list+map LRU vs sharded "
      "open addressing";
  pool.sections = MicroBufferPool;
  registry->Register(std::move(pool));
}

}  // namespace fairmatch::bench

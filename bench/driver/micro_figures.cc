// Micro figures: registry entries that isolate the two optimized inner
// loops (the TA reverse top-1 probe loop and BBS/UpdateSkyline) so the
// perf trajectory of PR 3's hot-path work stays CI-visible in
// BENCH_<scale>.json — the regression gate diffs their deterministic
// columns (probes-as-io, restarts-as-loops, node reads) across commits
// alongside the paper figures.
//
// Unlike the paper figures these cells do not run a whole matcher; the
// custom runners drive the component directly but report through the
// same RunStats columns:
//
//   micro_reverse_top1 — io = sorted-list probes, loops = Omega
//     restarts, pairs = completed Best() assignments.
//   micro_bbs — io = counted R-tree node reads (paged store), loops =
//     RemoveAndUpdate rounds, pairs = skyline members drained.
#include <algorithm>
#include <string>
#include <vector>

#include "driver/figure_registry.h"
#include "fairmatch/common/timer.h"
#include "fairmatch/engine/exec_context.h"
#include "fairmatch/rtree/node_store.h"
#include "fairmatch/skyline/bbs.h"
#include "fairmatch/topk/function_lists.h"
#include "fairmatch/topk/reverse_top1.h"

namespace fairmatch::bench {

namespace {

// Drains the whole function set through resumable Best() calls from a
// rotating pool of query objects — the exact usage pattern SB's loop
// produces (interleaved queries and assignments).
RunStats RunMicroReverseTop1(const AssignmentProblem& problem,
                             bool biased) {
  Timer timer;
  RunStats stats;
  stats.algorithm = biased ? "TA-biased" : "TA-round-robin";
  FunctionLists lists(&problem.functions);
  ReverseTop1Options options;
  options.biased_probing = biased;
  ReverseTop1 rt1(&lists, options);
  std::vector<uint8_t> assigned(problem.functions.size(), 0);
  int64_t remaining = static_cast<int64_t>(problem.functions.size());
  const size_t nq =
      std::min<size_t>(64, std::max<size_t>(1, problem.objects.size()));
  std::vector<ReverseTop1State> states(nq);
  size_t i = 0;
  while (remaining > 0) {
    const size_t q = i++ % nq;
    auto best =
        rt1.Best(&states[q], problem.objects[q].point, assigned, remaining);
    if (!best.has_value()) break;
    assigned[best->first] = 1;
    remaining--;
    stats.pairs++;
  }
  stats.cpu_ms = timer.ElapsedMs();
  stats.io_accesses = rt1.probes();
  stats.loops = rt1.restarts();
  size_t state_bytes = lists.memory_bytes();
  for (const ReverseTop1State& s : states) state_bytes += s.memory_bytes();
  stats.peak_memory_bytes = state_bytes;
  return stats;
}

// Full BBS + UpdateSkyline drain over a paged (counted-I/O) object
// tree: compute the initial skyline, then repeatedly remove every
// member until the tree is exhausted — the skyline-maintenance work an
// entire assignment performs, without the TA/pairing layers.
RunStats RunMicroBbs(const AssignmentProblem& problem,
                     const BenchConfig& config) {
  ExecContext ctx;
  PagedNodeStore store(problem.dims, 4096, &ctx.counters());
  RTree tree(&store);
  BuildObjectTree(problem, &tree);
  store.ResetCounters();  // exclude the build phase
  store.SetBufferFraction(config.buffer_fraction);
  ctx.BeginRun();
  RunStats stats;
  stats.algorithm = "UpdateSkyline";
  SkylineManager mgr(&tree);
  mgr.ComputeInitial();
  std::vector<ObjectId> victims;
  while (mgr.skyline().size() > 0) {
    stats.loops++;
    victims.clear();
    mgr.skyline().ForEach(
        [&](int, const SkylineObject& m) { victims.push_back(m.id); });
    stats.pairs += victims.size();
    mgr.RemoveAndUpdate(victims);
    ctx.memory().Set(mgr.memory_bytes());
  }
  ctx.Finish(&stats);
  return stats;
}

std::vector<FigureSection> MicroReverseTop1() {
  FigureSection s;
  s.title = "Micro: TA reverse top-1 drain";
  s.subtitle =
      "in-memory lists, 64 resumable query states, x = |F| "
      "(io = probes, loops = restarts)";
  for (int nf : {1000, 5000, 20000}) {
    BenchConfig config;
    config.num_functions = nf;
    config.num_objects = 1000;
    config = Scale(config);
    std::vector<MeasuredRun> runs;
    for (bool biased : {true, false}) {
      MeasuredRun run;
      run.algorithm = biased ? "TA-biased" : "TA-round-robin";
      run.runner = [biased](const AssignmentProblem& problem,
                            const BenchConfig&) {
        return RunMicroReverseTop1(problem, biased);
      };
      runs.push_back(std::move(run));
    }
    s.cells.push_back({std::to_string(nf), config, nullptr, std::move(runs)});
  }
  return {s};
}

std::vector<FigureSection> MicroBbs() {
  FigureSection s;
  s.title = "Micro: BBS + UpdateSkyline full drain";
  s.subtitle =
      "paged object tree, remove-all loop until empty, x = |O| "
      "(io = node reads, pairs = members drained)";
  for (int no : {20000, 100000}) {
    BenchConfig config;
    config.num_objects = no;
    config.num_functions = 10;  // unused by the runner; keep generation cheap
    config = Scale(config);
    MeasuredRun run;
    run.algorithm = "UpdateSkyline";
    run.runner = [](const AssignmentProblem& problem,
                    const BenchConfig& c) {
      return RunMicroBbs(problem, c);
    };
    s.cells.push_back({std::to_string(no), config, nullptr, {std::move(run)}});
  }
  return {s};
}

}  // namespace

void RegisterMicroFigures(FigureRegistry* registry) {
  FigureSpec rt1;
  rt1.name = "micro_reverse_top1";
  rt1.description =
      "Microbench: TA reverse top-1 inner loop (flat candidate heap)";
  rt1.sections = MicroReverseTop1;
  registry->Register(std::move(rt1));

  FigureSpec bbs;
  bbs.name = "micro_bbs";
  bbs.description =
      "Microbench: BBS/UpdateSkyline drain (arena-backed plists)";
  bbs.sections = MicroBbs;
  registry->Register(std::move(bbs));
}

}  // namespace fairmatch::bench

// fairmatch_bench — the one benchmark driver.
//
//   fairmatch_bench --figure=<name|all>[,name...] --scale=<paper|quick|smoke>
//                   --format=<text|csv|json> [--out=PATH] [--csv=PATH]
//                   [--json=PATH] [--repeat=N]
//   fairmatch_bench --list          # figures + matchers, human-readable
//   fairmatch_bench --list-names    # figure names only, one per line
//
// Replaces the former 13 per-figure binaries: every figure of the
// paper's evaluation (plus the SB ablation) is a FigureRegistry entry,
// and CI gates on the JSON report this binary emits.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "driver/driver.h"
#include "fairmatch/engine/registry.h"

namespace fairmatch::bench {
namespace {

constexpr char kUsage[] =
    R"(usage: fairmatch_bench [flags]

  --figure=NAME[,NAME...]  figures to run; "all" (default) runs every one
  --scale=SCALE            paper | quick | smoke (default: FAIRMATCH_SCALE
                           environment variable, falling back to quick)
  --format=FORMAT          primary output format: text (default) | csv | json
  --out=PATH               primary output file (default: stdout)
  --csv=PATH               additionally write a CSV report to PATH
  --json=PATH              additionally write a JSON report to PATH
  --repeat=N               runs per measurement; reports per-field medians
  --threads=N[,N...]       worker-lane counts swept by batch_throughput
                           (default: 1,2,4,8)
  --batch=K                problem instances per batch for batch_throughput
                           (default: scale-dependent)
  --serve-lanes=N[,N...]   server lane counts swept by serving_latency
                           (default: 1,2,4)
  --arrival=R[,R...]       open-loop arrival rates in req/s for
                           serving_latency (default: 100,400)
  --requests=K             requests per serving_latency experiment
                           (default: scale-dependent)
  --list                   print registered figures and matchers, then exit
  --list-names             print figure names only (machine-readable)
  --help                   this text
)";

/// If `arg` is --<flag>=<value>, stores the value and returns true.
bool ParseFlag(const char* arg, const char* flag, std::string* value) {
  const std::string prefix = std::string("--") + flag + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *value = arg + prefix.size();
  return true;
}

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    if (comma == std::string::npos) {
      if (start < list.size()) parts.push_back(list.substr(start));
      break;
    }
    if (comma > start) parts.push_back(list.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

void PrintList() {
  std::cout << "Figures:\n";
  const FigureRegistry& figures = FigureRegistry::Global();
  for (const std::string& name : figures.Names()) {
    std::printf("  %-28s %s\n", name.c_str(),
                figures.Find(name)->description.c_str());
  }
  std::cout << "\nMatchers:\n";
  const MatcherRegistry& matchers = MatcherRegistry::Global();
  for (const std::string& name : matchers.Names()) {
    std::printf("  %-28s %s\n", name.c_str(),
                matchers.Find(name)->description.c_str());
  }
}

int Main(int argc, char** argv) {
  DriverOptions options;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0) {
      std::cout << kUsage;
      return 0;
    }
    if (std::strcmp(arg, "--list") == 0) {
      PrintList();
      return 0;
    }
    if (std::strcmp(arg, "--list-names") == 0) {
      for (const std::string& name : FigureRegistry::Global().Names()) {
        std::cout << name << "\n";
      }
      return 0;
    }
    if (ParseFlag(arg, "figure", &value)) {
      options.figures = SplitCommas(value);
    } else if (ParseFlag(arg, "scale", &value)) {
      options.scale = value;
    } else if (ParseFlag(arg, "format", &value)) {
      options.format = value;
    } else if (ParseFlag(arg, "out", &value)) {
      options.out_path = value;
    } else if (ParseFlag(arg, "csv", &value)) {
      options.csv_path = value;
    } else if (ParseFlag(arg, "json", &value)) {
      options.json_path = value;
    } else if (ParseFlag(arg, "repeat", &value)) {
      char* end = nullptr;
      options.repeat = static_cast<int>(std::strtol(value.c_str(), &end, 10));
      if (end == value.c_str() || *end != '\0') {
        std::cerr << "--repeat expects an integer, got '" << value << "'\n";
        return 2;
      }
    } else if (ParseFlag(arg, "threads", &value)) {
      options.batch_threads.clear();
      for (const std::string& part : SplitCommas(value)) {
        char* end = nullptr;
        const long threads = std::strtol(part.c_str(), &end, 10);
        if (end == part.c_str() || *end != '\0' || threads < 1) {
          std::cerr << "--threads expects positive integers, got '" << value
                    << "'\n";
          return 2;
        }
        options.batch_threads.push_back(static_cast<int>(threads));
      }
      if (options.batch_threads.empty()) {
        std::cerr << "--threads expects at least one lane count\n";
        return 2;
      }
    } else if (ParseFlag(arg, "batch", &value)) {
      char* end = nullptr;
      const long items = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || items < 1) {
        std::cerr << "--batch expects a positive integer, got '" << value
                  << "'\n";
        return 2;
      }
      options.batch_items = static_cast<int>(items);
    } else if (ParseFlag(arg, "serve-lanes", &value)) {
      options.serve_lanes.clear();
      for (const std::string& part : SplitCommas(value)) {
        char* end = nullptr;
        const long lanes = std::strtol(part.c_str(), &end, 10);
        if (end == part.c_str() || *end != '\0' || lanes < 1) {
          std::cerr << "--serve-lanes expects positive integers, got '"
                    << value << "'\n";
          return 2;
        }
        options.serve_lanes.push_back(static_cast<int>(lanes));
      }
      if (options.serve_lanes.empty()) {
        std::cerr << "--serve-lanes expects at least one lane count\n";
        return 2;
      }
    } else if (ParseFlag(arg, "arrival", &value)) {
      options.arrival_per_sec.clear();
      for (const std::string& part : SplitCommas(value)) {
        char* end = nullptr;
        const long rate = std::strtol(part.c_str(), &end, 10);
        if (end == part.c_str() || *end != '\0' || rate < 1) {
          std::cerr << "--arrival expects positive req/s rates, got '"
                    << value << "'\n";
          return 2;
        }
        options.arrival_per_sec.push_back(static_cast<int>(rate));
      }
      if (options.arrival_per_sec.empty()) {
        std::cerr << "--arrival expects at least one rate\n";
        return 2;
      }
    } else if (ParseFlag(arg, "requests", &value)) {
      char* end = nullptr;
      const long requests = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || requests < 1) {
        std::cerr << "--requests expects a positive integer, got '" << value
                  << "'\n";
        return 2;
      }
      options.serve_requests = static_cast<int>(requests);
    } else {
      std::cerr << "unknown flag '" << arg << "'\n\n" << kUsage;
      return 2;
    }
  }
  return RunDriver(options);
}

}  // namespace
}  // namespace fairmatch::bench

int main(int argc, char** argv) {
  return fairmatch::bench::Main(argc, argv);
}

// The fault_recovery figure: serving resilience under seeded storage
// faults (src/fairmatch/storage/fault_injector.h).
//
// One section per injected-fault intensity; the x axis is the server's
// lane count. Each cell replays the same request sequence — SB /
// SB-alt round-robin, every request on per-request disk-resident
// function lists (the lane workspace disk is the fault surface) — under
// a FaultInjector plan seeded per (request id, attempt), with retries
// enabled, and reports:
//
//   mix          cpu_ms = p50 end-to-end latency (failed requests too)
//   mix:p99      cpu_ms = p99 end-to-end latency
//   mix:success  cpu_ms = % of requests that completed OK
//
// Intensities are calibrated, not absolute: a per-access rate is only
// meaningful relative to how many physical accesses one attempt makes,
// so each non-zero section measures a fault-free probe request and sets
// the per-access rates to an expected 1 (rate1) or 8 (rate8) injected
// faults per attempt. rate0 runs with the injector disabled — the
// configuration every other figure measures.
//
// The deterministic columns are the CI hook (check_bench_report.py):
// io_accesses carries the total injected faults, pairs the total retry
// attempts, and loops a 48-bit digest of every (status, matching) in
// submission order. Because fault schedules depend only on (plan seed,
// request id, attempt), all three are byte-identical at every lane
// count — and all-zero in the rate0 section.
#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "driver/figure_registry.h"
#include "fairmatch/common/check.h"
#include "fairmatch/serve/dataset_registry.h"
#include "fairmatch/serve/server.h"

namespace fairmatch::bench {

namespace {

/// Both chaos matchers exercise the faulted disk through per-request
/// DiskFunctionStores; SB-alt additionally requires one.
const char* const kFaultMix[] = {"SB", "SB-alt"};
constexpr int kFaultMixSize = 2;

/// Requests per experiment for the current scale.
int FaultRequests() { return Scaled(96, 16); }

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t HashMatching(const Matching& matching) {
  uint64_t h = 1469598103934665603ull;
  for (const MatchPair& p : matching) {
    h = Fnv1a(h, static_cast<uint64_t>(p.fid));
    h = Fnv1a(h, static_cast<uint64_t>(p.oid));
  }
  return h;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index =
      static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  return values[index];
}

serve::Request FaultRequest(int index) {
  serve::Request request;
  request.dataset = "bench";
  request.matcher = kFaultMix[index % kFaultMixSize];
  request.disk_resident_functions = true;
  return request;
}

struct FaultExperimentResult {
  std::vector<double> total_ms;  // per response, submission order
  int64_t injected_faults = 0;
  int64_t retries = 0;
  int ok = 0;
  int requests = 0;
  uint64_t digest = 1469598103934665603ull;
};

/// Per-cell memo shared by the cell's rows (same pattern as
/// serve_figure.cc): repeat r of every row reads the same run.
struct FaultExperimentCache {
  std::vector<FaultExperimentResult> samples;
};

FaultExperimentResult RunFaultExperiment(const AssignmentProblem& problem,
                                         int lanes, double faults_per_run) {
  const int requests = FaultRequests();

  serve::DatasetRegistry registry;
  registry.Open("bench", problem);

  serve::ServerOptions options;
  options.lanes = lanes;
  options.max_queue = static_cast<size_t>(requests);
  options.max_attempts = 3;
  if (faults_per_run > 0.0) {
    // Calibrate the per-access rates against a fault-free probe of the
    // same request: one attempt makes probe-io physical accesses, so
    // rate = faults_per_run / probe-io injects that many in expectation.
    serve::Server probe(&registry);
    const serve::Response probed = probe.Execute(FaultRequest(0));
    FAIRMATCH_CHECK(probed.status.ok());
    FAIRMATCH_CHECK(probed.stats.io_accesses > 0);
    const double unit =
        faults_per_run / static_cast<double>(probed.stats.io_accesses);
    options.fault_plan.seed = 20090824;
    options.fault_plan.read_fail_rate = unit / 2;
    options.fault_plan.corrupt_rate = unit / 2;
  }
  serve::Server server(&registry, options);

  // Open-loop arrivals at a fixed pace, as in serving_latency: the
  // latency columns then show how retries inflate the tail.
  const auto interval = std::chrono::microseconds(4000);
  const auto start = std::chrono::steady_clock::now();
  std::vector<serve::ResponseFuture> futures;
  futures.reserve(static_cast<size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    std::this_thread::sleep_until(start + i * interval);
    futures.push_back(server.Submit(FaultRequest(i)));
  }

  FaultExperimentResult result;
  result.requests = requests;
  for (int i = 0; i < requests; ++i) {
    const serve::Response& response =
        futures[static_cast<size_t>(i)].Wait();
    result.total_ms.push_back(response.total_ms);
    result.injected_faults += response.injected_faults;
    result.retries += response.attempts > 0 ? response.attempts - 1 : 0;
    if (response.status.ok()) ++result.ok;
    result.digest =
        Fnv1a(result.digest, static_cast<uint64_t>(response.status.code));
    result.digest = Fnv1a(result.digest, HashMatching(response.matching));
  }
  server.Close();
  return result;
}

const FaultExperimentResult& SampleFor(
    const std::shared_ptr<FaultExperimentCache>& cache,
    const std::shared_ptr<size_t>& cursor, const AssignmentProblem& problem,
    int lanes, double faults_per_run) {
  const size_t index = (*cursor)++;
  while (cache->samples.size() <= index) {
    cache->samples.push_back(
        RunFaultExperiment(problem, lanes, faults_per_run));
  }
  return cache->samples[index];
}

/// The lane-invariant columns every row carries: injected faults,
/// retries, and the (status, matching) digest in submission order.
void FillDeterministicColumns(const FaultExperimentResult& sample,
                              RunStats* stats) {
  stats->io_accesses = sample.injected_faults;
  stats->pairs = static_cast<size_t>(sample.retries);
  stats->loops = static_cast<int64_t>(sample.digest & ((1ull << 48) - 1));
}

std::vector<FigureSection> FaultRecovery() {
  const ServeBenchParams& params = GetServeBenchParams();
  const int requests = FaultRequests();

  BenchConfig shape;
  shape.num_functions = 500;
  shape.num_objects = 10000;
  shape.dims = 3;
  shape = Scale(shape);

  struct Intensity {
    const char* key;
    double faults_per_run;
  };
  const Intensity kIntensities[] = {{"rate0", 0.0},   // injector disabled
                                    {"rate1", 1.0},   // ~1 fault / attempt
                                    {"rate8", 8.0}};  // mostly doomed runs

  std::vector<FigureSection> sections;
  for (const Intensity& intensity : kIntensities) {
    FigureSection s;
    s.key = intensity.key;
    s.title = intensity.faults_per_run == 0.0
                  ? "Fault recovery baseline: injector disabled"
                  : "Fault recovery at ~" +
                        std::to_string(
                            static_cast<int>(intensity.faults_per_run)) +
                        " injected faults per attempt";
    s.subtitle =
        "x = server lanes, " + std::to_string(requests) +
        " requests round-robin over SB / SB-alt on per-request disk "
        "function lists, 3 attempts with per-(request, attempt) seeded "
        "fault schedules (cpu_ms: mix = p50 end-to-end ms, :p99 = p99, "
        ":success = % OK; io = injected faults, pairs = retries, loops "
        "= status+matching digest — identical at every x, all zero at "
        "rate0)";
    for (const int lanes : params.lanes) {
      FigureCell cell;
      cell.x = std::to_string(lanes);
      cell.config = shape;
      auto cache = std::make_shared<FaultExperimentCache>();
      struct Row {
        const char* name;
        int kind;  // 0 = p50, 1 = p99, 2 = success %
      };
      const Row kRows[] = {
          {"mix", 0}, {"mix:p99", 1}, {"mix:success", 2}};
      for (const Row& row : kRows) {
        MeasuredRun run;
        run.algorithm = row.name;
        auto cursor = std::make_shared<size_t>(0);
        const double faults_per_run = intensity.faults_per_run;
        const int kind = row.kind;
        const char* name = row.name;
        run.runner = [cache, cursor, lanes, faults_per_run, kind, name](
                         const AssignmentProblem& problem,
                         const BenchConfig&) {
          const FaultExperimentResult& sample =
              SampleFor(cache, cursor, problem, lanes, faults_per_run);
          RunStats stats;
          stats.algorithm = name;
          switch (kind) {
            case 0:
              stats.cpu_ms = Percentile(sample.total_ms, 0.50);
              break;
            case 1:
              stats.cpu_ms = Percentile(sample.total_ms, 0.99);
              break;
            default:
              stats.cpu_ms = sample.requests > 0
                                 ? 100.0 * sample.ok / sample.requests
                                 : 0.0;
              break;
          }
          FillDeterministicColumns(sample, &stats);
          return stats;
        };
        cell.runs.push_back(std::move(run));
      }
      s.cells.push_back(std::move(cell));
    }
    sections.push_back(std::move(s));
  }
  return sections;
}

}  // namespace

void RegisterFaultFigure(FigureRegistry* registry) {
  FigureSpec spec;
  spec.name = "fault_recovery";
  spec.description =
      "serving resilience under seeded storage faults: success rate, "
      "latency tail and retry counts vs fault intensity (--serve-lanes)";
  spec.sections = FaultRecovery;
  registry->Register(std::move(spec));
}

}  // namespace fairmatch::bench

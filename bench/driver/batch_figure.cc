// The batch_throughput figure: items/s of the batch execution layer
// (engine/batch_runner.h) as worker lanes grow.
//
// Each cell runs the same batch of K independent seeded problem
// instances (generation + index build + solve, all inside the lanes) at
// x worker lanes. The simulated disks get a small per-access latency so
// that lanes overlap I/O stalls the way a real disk-resident deployment
// would — without it a 1-CPU runner shows no scaling at all, with it
// the figure measures exactly what batching buys: stall overlap.
//
// Row columns keep their registry meaning, summed over the batch:
// io/pairs/loops are batch totals (deterministic, so the CI report
// checker can assert they are identical across thread counts), cpu_ms
// is the batch WALL time — the column whose x-to-x ratio is the
// throughput scaling — and mem_mb the largest single-item peak.
#include <string>
#include <utility>
#include <vector>

#include "driver/figure_registry.h"
#include "fairmatch/engine/batch_runner.h"

namespace fairmatch::bench {

namespace {

/// Per-physical-I/O latency of the batch items' simulated disks.
constexpr int kIoLatencyUs = 200;

/// Batch size for the current scale (--batch overrides).
int BatchItems() {
  const int flag = GetBatchBenchParams().batch_items;
  return flag > 0 ? flag : Scaled(64, 8);
}

BatchProblemSpec SpecFromConfig(const BenchConfig& config) {
  BatchProblemSpec spec;
  spec.num_functions = config.num_functions;
  spec.num_objects = config.num_objects;
  spec.dims = config.dims;
  spec.distribution = config.distribution;
  spec.base_seed = config.seed;
  spec.function_capacity = config.function_capacity;
  spec.object_capacity = config.object_capacity;
  spec.max_gamma = config.max_gamma;
  spec.disk_resident_functions = config.disk_resident_functions;
  spec.buffer_fraction = config.buffer_fraction;
  spec.io_latency_us = kIoLatencyUs;
  return spec;
}

RunStats RunBatch(const std::string& matcher, const BatchProblemSpec& spec,
                  int threads) {
  BatchRunner runner(threads);
  const BatchResult result =
      runner.RunGenerated(matcher, spec, BatchItems());
  RunStats stats;
  stats.algorithm = matcher;
  stats.cpu_ms = result.stats.wall_ms;
  stats.io_accesses = result.stats.totals.io_accesses;
  stats.pairs = result.stats.totals.pairs;
  stats.loops = result.stats.totals.loops;
  stats.peak_memory_bytes = result.stats.totals.peak_memory_bytes;
  return stats;
}

std::vector<FigureSection> BatchThroughput() {
  FigureSection s;
  s.title = "Batch throughput: independent problems across worker lanes";
  s.subtitle =
      "x = lanes, K = " + std::to_string(BatchItems()) +
      " seeded instances per batch, " + std::to_string(kIoLatencyUs) +
      "us simulated I/O latency (cpu_ms = batch wall time; io/pairs/"
      "loops are batch totals, identical at every x)";

  // The per-item shape (scaled like every figure). Modest on purpose:
  // the figure measures the execution layer, not one giant instance.
  BenchConfig shape;
  shape.num_functions = 1000;
  shape.num_objects = 10000;
  shape.dims = 3;
  shape = Scale(shape);
  const BatchProblemSpec standard = SpecFromConfig(shape);
  BatchProblemSpec disk_f = standard;
  disk_f.disk_resident_functions = true;

  // The runners regenerate every instance inside their lanes, so the
  // cell carries a minimal config: the driver's shared BuildProblem
  // should not generate a full instance nobody reads.
  BenchConfig cell_config;
  cell_config.num_functions = 1;
  cell_config.num_objects = 1;
  cell_config.dims = shape.dims;
  cell_config.seed = shape.seed;

  for (const int threads : GetBatchBenchParams().threads) {
    std::vector<MeasuredRun> runs;
    // Standard setting (per-item paged object tree): the optimized
    // matcher and the paper's strongest baseline.
    for (const char* name : {"SB", "BruteForce"}) {
      MeasuredRun run;
      run.algorithm = name;
      run.runner = [name, standard, threads](const AssignmentProblem&,
                                             const BenchConfig&) {
        return RunBatch(name, standard, threads);
      };
      runs.push_back(std::move(run));
    }
    // Disk-resident-F setting (Section 7.6) rides along so both storage
    // layouts stay covered under concurrency.
    {
      MeasuredRun run;
      run.algorithm = "SB-alt";
      run.runner = [disk_f, threads](const AssignmentProblem&,
                                     const BenchConfig&) {
        return RunBatch("SB-alt", disk_f, threads);
      };
      runs.push_back(std::move(run));
    }
    s.cells.push_back(
        {std::to_string(threads), cell_config, nullptr, std::move(runs)});
  }
  return {s};
}

}  // namespace

void RegisterBatchFigure(FigureRegistry* registry) {
  FigureSpec spec;
  spec.name = "batch_throughput";
  spec.description =
      "Batch execution layer: items/s scaling over worker lanes "
      "(--threads, --batch)";
  spec.sections = BatchThroughput;
  registry->Register(std::move(spec));
}

}  // namespace fairmatch::bench

// Orchestration for the fairmatch_bench binary.
//
// Splitting planning (expand + validate figure and matcher names) from
// execution (generate problems, run, aggregate medians, stream to
// sinks) keeps every failure a clean non-zero exit with the relevant
// registry listing — never an abort() — and lets tests drive the exact
// pipeline the binary uses.
#ifndef FAIRMATCH_BENCH_DRIVER_DRIVER_H_
#define FAIRMATCH_BENCH_DRIVER_DRIVER_H_

#include <ostream>
#include <string>
#include <vector>

#include "driver/figure_registry.h"
#include "driver/report.h"

namespace fairmatch::bench {

/// Parsed command line of fairmatch_bench.
struct DriverOptions {
  /// Figure names; empty or the single entry "all" selects every
  /// registered figure.
  std::vector<std::string> figures;
  /// paper | quick | smoke; empty keeps the FAIRMATCH_SCALE default.
  std::string scale;
  /// Primary output format: text | csv | json.
  std::string format = "text";
  /// Primary output path; empty writes to stdout.
  std::string out_path;
  /// Optional extra copies (CI uploads both from one run).
  std::string csv_path;
  std::string json_path;
  /// Runs per cell; the report keeps per-field medians.
  int repeat = 1;
  /// Worker-lane counts for the batch_throughput figure (its x axis);
  /// empty keeps the BatchBenchParams default {1, 2, 4, 8}.
  std::vector<int> batch_threads;
  /// Problem instances per batch for batch_throughput; 0 keeps the
  /// scale default.
  int batch_items = 0;
  /// Server lane counts for the serving_latency figure (its x axis);
  /// empty keeps the ServeBenchParams default {1, 2, 4}.
  std::vector<int> serve_lanes;
  /// Open-loop arrival rates (req/s) for serving_latency; empty keeps
  /// the default {100, 400}.
  std::vector<int> arrival_per_sec;
  /// Requests per serving_latency experiment; 0 keeps the scale
  /// default.
  int serve_requests = 0;
};

/// One expanded figure, ready to execute.
struct FigurePlan {
  std::string name;
  std::vector<FigureSection> sections;
};

/// Expands the named figures at the current scale and validates every
/// registry-matcher run up front (bench_common::CheckRunnable). On
/// failure returns an empty plan and sets `error` to a diagnostic that
/// includes the relevant registry listing.
std::vector<FigurePlan> PlanFigures(const std::vector<std::string>& names,
                                    std::string* error);

/// Executes a plan: one generated problem shared across consecutive
/// runs with identical inputs, `repeat` runs per cell aggregated into
/// per-field medians, rows streamed to every sink (Close() included).
/// `progress` (may be null) receives one line per section.
void RunPlan(const std::vector<FigurePlan>& plan, int repeat,
             const std::vector<ReportSink*>& sinks, std::ostream* progress);

/// Full binary behavior behind flag parsing; returns the process exit
/// code (0 success, 1 I/O failure, 2 invalid options).
int RunDriver(const DriverOptions& options);

}  // namespace fairmatch::bench

#endif  // FAIRMATCH_BENCH_DRIVER_DRIVER_H_

// String-keyed registry of benchmark figures, mirroring MatcherRegistry.
//
// A figure is one parameterized experiment of the paper's evaluation
// (Figs 8–17) or one of our ablations: an x-axis sweep of BenchConfig
// mutations with a set of algorithms measured at every x. Specs expand
// lazily — Sections() runs after the driver has fixed the scale — into
// sections of cells; the driver (driver.h) walks the cells, shares one
// generated problem across runs with identical inputs, and streams
// aggregated rows into report sinks (report.h). New figures plug in by
// registering a spec — no binary to add, no CMake to touch.
#ifndef FAIRMATCH_BENCH_DRIVER_FIGURE_REGISTRY_H_
#define FAIRMATCH_BENCH_DRIVER_FIGURE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"

namespace fairmatch::bench {

/// One measured run within a cell: a registered matcher name, or —
/// when `runner` is set — a custom measurement for rows that are not
/// registry variants (the SB-options ablation sweeps SBOptions knobs).
/// Custom runners must follow the same instrumentation protocol as
/// bench::Run (one ExecContext per run, counters reset after the tree
/// build).
struct MeasuredRun {
  std::string algorithm;
  std::function<RunStats(const AssignmentProblem&, const BenchConfig&)>
      runner;
};

/// One x-axis position: the fully scaled configuration plus every
/// algorithm measured on the problem instance it generates.
struct FigureCell {
  std::string x;
  BenchConfig config;
  /// Keeps config.points_override alive (real-data figures).
  std::shared_ptr<const std::vector<Point>> owned_points;
  std::vector<MeasuredRun> runs;
};

/// A printed sub-figure. Most figures have exactly one; Figure 9 has
/// one per distribution, the ablation one per design choice. `key` is
/// the machine-readable slug recorded in report rows (empty for
/// single-section figures); `title`/`subtitle` reproduce the figure
/// headline for the text format.
struct FigureSection {
  std::string key;
  std::string title;
  std::string subtitle;
  std::vector<FigureCell> cells;
};

/// Registry entry: name, one-line description, lazy expansion.
struct FigureSpec {
  std::string name;
  std::string description;
  std::function<std::vector<FigureSection>()> sections;
};

/// String-keyed figure registry.
class FigureRegistry {
 public:
  /// The process-wide registry, with all built-in figures (the paper's
  /// Figs 8–17 plus the SB ablation) already registered.
  static FigureRegistry& Global();

  /// Registers a figure. Re-registering a name replaces the entry.
  void Register(FigureSpec spec);

  /// Entry for `name`, or nullptr if unknown.
  const FigureSpec* Find(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

  size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, FigureSpec> entries_;
};

}  // namespace fairmatch::bench

#endif  // FAIRMATCH_BENCH_DRIVER_FIGURE_REGISTRY_H_

// The update_throughput figure: incremental index updates
// (src/fairmatch/update/) against the from-scratch rebuild they must
// be indistinguishable from.
//
// One section; the x axis is the update batch size. Each cell opens a
// resident dataset, drives a DeltaBuilder through a fixed number of
// seeded batches (half deletes, half inserts, so the object count
// stays put) and reports:
//
//   apply:updates_per_s  cpu_ms = applied updates per second
//   apply:epoch_ms       cpu_ms = mean wall ms per epoch (batch)
//   query:updated        cpu_ms = SB query ms on the updated epoch
//   query:rebuilt        cpu_ms = SB query ms on a from-scratch
//                                 rebuild of the same final problem
//
// The deterministic columns are the CI hook (checked by
// .github/check_bench_report.py): both query rows carry the size of
// their matching in `pairs` and a 48-bit digest of it in `loops`, and
// because the update path is exact, the updated row's digest and pair
// count must equal the rebuilt row's in every cell — the
// update-vs-rebuild differential on the report surface. The apply rows
// carry the total updates applied (`pairs`) and R-tree node edits
// (`io_accesses`), both pure functions of the cell's seed. Only the
// latency/throughput columns may vary run to run; the query ratio is
// the figure's degradation story (an updated epoch serves from
// incrementally edited pages and possibly a patch overlay).
#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "driver/figure_registry.h"
#include "fairmatch/common/check.h"
#include "fairmatch/common/rng.h"
#include "fairmatch/common/timer.h"
#include "fairmatch/data/synthetic.h"
#include "fairmatch/serve/dataset_registry.h"
#include "fairmatch/update/delta_builder.h"
#include "fairmatch/update/stream_matcher.h"

namespace fairmatch::bench {

namespace {

constexpr int kEpochs = 6;
constexpr int kQueryReps = 3;

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

int64_t MatchingDigest48(const Matching& matching) {
  uint64_t h = 1469598103934665603ull;
  for (const MatchPair& p : matching) {
    h = Fnv1a(h, static_cast<uint64_t>(p.fid));
    h = Fnv1a(h, static_cast<uint64_t>(p.oid));
  }
  return static_cast<int64_t>(h & ((1ull << 48) - 1));
}

/// Half deletes (distinct, seeded) + half inserts: the object count is
/// back where it started after every batch.
update::UpdateBatch SeededBatch(const AssignmentProblem& problem,
                                int batch_size, Rng* rng) {
  update::UpdateBatch batch;
  const int num_objects = static_cast<int>(problem.objects.size());
  const int half = std::max(1, batch_size / 2);
  std::vector<bool> picked(num_objects, false);
  while (static_cast<int>(batch.delete_objects.size()) <
         std::min(half, num_objects - 1)) {
    const int id = static_cast<int>(rng->UniformInt(0, num_objects - 1));
    if (picked[id]) continue;
    picked[id] = true;
    batch.delete_objects.push_back(id);
  }
  for (int i = 0; i < half; ++i) {
    ObjectItem o;
    o.point = Point(problem.dims);
    for (int d = 0; d < problem.dims; ++d) {
      o.point[d] = static_cast<float>(rng->Uniform());
    }
    batch.insert_objects.push_back(o);
  }
  return batch;
}

struct UpdateExperiment {
  double apply_ms = 0.0;
  int64_t updates_applied = 0;
  int64_t tree_ops = 0;
  double updated_query_ms = 0.0;
  double rebuilt_query_ms = 0.0;
  size_t updated_pairs = 0;
  size_t rebuilt_pairs = 0;
  int64_t updated_digest = 0;
  int64_t rebuilt_digest = 0;
};

double TimedQueryMs(const serve::ResidentDataset& dataset,
                    Matching* matching) {
  double best = 0.0;
  for (int rep = 0; rep < kQueryReps; ++rep) {
    Timer timer;
    AssignResult result = update::RunOnDataset(dataset, "SB");
    const double ms = timer.ElapsedMs();
    FAIRMATCH_CHECK(result.status.ok());
    if (rep == 0 || ms < best) best = ms;
    *matching = std::move(result.matching);
  }
  return best;
}

UpdateExperiment RunUpdateExperiment(const AssignmentProblem& problem,
                                     const BenchConfig& config,
                                     int batch_size) {
  serve::DatasetRegistry registry;
  serve::DatasetHandle base = registry.Open("bench", problem);
  update::DeltaBuilder builder(base);

  UpdateExperiment result;
  Rng rng(config.seed ^ (static_cast<uint64_t>(batch_size) << 20));
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    update::UpdateBatch batch =
        SeededBatch(builder.current()->problem(), batch_size, &rng);
    const int64_t updates = static_cast<int64_t>(
        batch.delete_objects.size() + batch.insert_objects.size());
    update::UpdateStats stats;
    Timer timer;
    serve::ServeStatus status = builder.Apply(batch, &stats);
    result.apply_ms += timer.ElapsedMs();
    FAIRMATCH_CHECK(status.ok());
    result.updates_applied += updates;
    result.tree_ops += stats.tree_ops;
  }

  Matching updated;
  result.updated_query_ms = TimedQueryMs(*builder.current(), &updated);
  result.updated_pairs = updated.size();
  result.updated_digest = MatchingDigest48(updated);

  // The from-scratch rebuild of the identical final problem: the
  // updated epoch's responses must be byte-identical to this one's.
  serve::DatasetRegistry rebuilt_registry;
  serve::DatasetHandle rebuilt =
      rebuilt_registry.Open("bench", builder.current()->problem());
  Matching rebuilt_matching;
  result.rebuilt_query_ms = TimedQueryMs(*rebuilt, &rebuilt_matching);
  result.rebuilt_pairs = rebuilt_matching.size();
  result.rebuilt_digest = MatchingDigest48(rebuilt_matching);
  return result;
}

/// Repeat-aware shared experiment per cell (serve_figure.cc pattern).
struct ExperimentCache {
  std::vector<UpdateExperiment> samples;
};

const UpdateExperiment& SampleFor(
    const std::shared_ptr<ExperimentCache>& cache,
    const std::shared_ptr<size_t>& cursor, const AssignmentProblem& problem,
    const BenchConfig& config, int batch_size) {
  const size_t index = (*cursor)++;
  while (cache->samples.size() <= index) {
    cache->samples.push_back(RunUpdateExperiment(problem, config, batch_size));
  }
  return cache->samples[index];
}

std::vector<FigureSection> UpdateThroughput() {
  BenchConfig shape;
  shape.num_functions = 1000;
  shape.num_objects = 20000;
  shape.dims = 3;
  shape = Scale(shape);

  FigureSection s;
  s.key = "apply";
  s.title = "Incremental updates: apply throughput vs query degradation";
  s.subtitle =
      "x = updates per batch (half deletes, half inserts), " +
      std::to_string(kEpochs) +
      " epochs per run (apply rows: cpu_ms = updates/s and wall ms per "
      "epoch, pairs = updates applied, io = R-tree node edits; query "
      "rows: cpu_ms = SB ms on the updated epoch vs a from-scratch "
      "rebuild, pairs/loops = matching size + digest — identical "
      "between the two rows of every cell)";
  for (const int batch_size :
       {Scaled(200, 8), Scaled(800, 16), Scaled(3200, 32)}) {
    FigureCell cell;
    cell.x = std::to_string(batch_size);
    cell.config = shape;
    auto cache = std::make_shared<ExperimentCache>();

    struct Row {
      const char* name;
      double (*value)(const UpdateExperiment&);
      void (*fill)(const UpdateExperiment&, RunStats*);
    };
    const Row kRows[] = {
        {"apply:updates_per_s",
         [](const UpdateExperiment& e) {
           return e.apply_ms > 0.0 ? 1000.0 * e.updates_applied / e.apply_ms
                                   : 0.0;
         },
         [](const UpdateExperiment& e, RunStats* stats) {
           stats->io_accesses = e.tree_ops;
           stats->pairs = static_cast<size_t>(e.updates_applied);
           stats->loops = e.updated_digest;
         }},
        {"apply:epoch_ms",
         [](const UpdateExperiment& e) { return e.apply_ms / kEpochs; },
         [](const UpdateExperiment& e, RunStats* stats) {
           stats->io_accesses = e.tree_ops;
           stats->pairs = static_cast<size_t>(e.updates_applied);
           stats->loops = e.updated_digest;
         }},
        {"query:updated",
         [](const UpdateExperiment& e) { return e.updated_query_ms; },
         [](const UpdateExperiment& e, RunStats* stats) {
           stats->pairs = e.updated_pairs;
           stats->loops = e.updated_digest;
         }},
        {"query:rebuilt",
         [](const UpdateExperiment& e) { return e.rebuilt_query_ms; },
         [](const UpdateExperiment& e, RunStats* stats) {
           stats->pairs = e.rebuilt_pairs;
           stats->loops = e.rebuilt_digest;
         }},
    };
    for (const Row& row : kRows) {
      MeasuredRun run;
      run.algorithm = row.name;
      auto cursor = std::make_shared<size_t>(0);
      const char* name = row.name;
      auto value = row.value;
      auto fill = row.fill;
      run.runner = [cache, cursor, name, value, fill, batch_size](
                       const AssignmentProblem& problem,
                       const BenchConfig& config) {
        const UpdateExperiment& sample =
            SampleFor(cache, cursor, problem, config, batch_size);
        RunStats stats;
        stats.algorithm = name;
        stats.cpu_ms = value(sample);
        fill(sample, &stats);
        return stats;
      };
      cell.runs.push_back(std::move(run));
    }
    s.cells.push_back(std::move(cell));
  }
  return {std::move(s)};
}

}  // namespace

void RegisterUpdateFigure(FigureRegistry* registry) {
  FigureSpec spec;
  spec.name = "update_throughput";
  spec.description =
      "incremental updates: DeltaBuilder apply rate over batch sizes, "
      "with updated-vs-rebuilt query latency and matching digests";
  spec.sections = UpdateThroughput;
  registry->Register(std::move(spec));
}

}  // namespace fairmatch::bench

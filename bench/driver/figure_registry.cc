#include "driver/figure_registry.h"

namespace fairmatch::bench {

// Defined in figures.cc / micro_figures.cc / batch_figure.cc /
// packed_figures.cc; referenced here so the registration translation
// units are always pulled out of the static library.
void RegisterBuiltinFigures(FigureRegistry* registry);
void RegisterMicroFigures(FigureRegistry* registry);
void RegisterBatchFigure(FigureRegistry* registry);
void RegisterPackedFigures(FigureRegistry* registry);
void RegisterServeFigure(FigureRegistry* registry);
void RegisterFaultFigure(FigureRegistry* registry);
void RegisterUpdateFigure(FigureRegistry* registry);
void RegisterRecoveryFigure(FigureRegistry* registry);

FigureRegistry& FigureRegistry::Global() {
  static FigureRegistry* registry = [] {
    auto* r = new FigureRegistry();
    RegisterBuiltinFigures(r);
    RegisterMicroFigures(r);
    RegisterBatchFigure(r);
    RegisterPackedFigures(r);
    RegisterServeFigure(r);
    RegisterFaultFigure(r);
    RegisterUpdateFigure(r);
    RegisterRecoveryFigure(r);
    return r;
  }();
  return *registry;
}

void FigureRegistry::Register(FigureSpec spec) {
  entries_[spec.name] = std::move(spec);
}

const FigureSpec* FigureRegistry::Find(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> FigureRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, spec] : entries_) names.push_back(name);
  return names;  // std::map keeps them sorted
}

}  // namespace fairmatch::bench

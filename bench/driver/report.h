// Structured serialization of benchmark results.
//
// The driver aggregates every measured cell into one ReportRow
// (median-of-repeat RunStats plus provenance) and streams the rows into
// one or more ReportSinks: the human-readable text format the old
// per-figure binaries printed, a flat CSV (one row per measurement, for
// plotting and diffing across commits), and a BENCH_<scale>.json
// summary grouped by figure (what CI gates on and uploads).
#ifndef FAIRMATCH_BENCH_DRIVER_REPORT_H_
#define FAIRMATCH_BENCH_DRIVER_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace fairmatch::bench {

/// Build/run provenance stamped onto every report.
struct ReportMeta {
  std::string scale;
  std::string git_sha;
  int repeat = 1;
};

/// The short git revision the binary was built from (CMake bakes it in
/// at configure time; "unknown" outside a git checkout).
std::string GitSha();

/// One aggregated measurement: median-of-repeat stats for one
/// (figure, section, x, algorithm) cell. cpu_ms is the median; the min
/// and population stddev over the repeat samples ride along so perf
/// deltas quoted from a report are reproducible from its artifacts
/// (with repeat=1 min equals the median and the stddev is 0).
struct ReportRow {
  std::string figure;
  std::string section;  // empty for single-section figures
  std::string x;
  std::string algorithm;
  int64_t io_accesses = 0;
  double cpu_ms = 0.0;
  double cpu_ms_min = 0.0;
  double cpu_ms_stddev = 0.0;
  double mem_mb = 0.0;
  uint64_t pairs = 0;
  int64_t loops = 0;
  uint64_t seed = 0;
};

/// Streaming consumer of report rows. The driver announces each
/// section (the text sink prints headers; structured sinks ignore
/// them), streams rows, and calls Close() exactly once at the end.
class ReportSink {
 public:
  virtual ~ReportSink() = default;
  virtual void BeginSection(const std::string& title,
                            const std::string& subtitle);
  virtual void AddRow(const ReportRow& row) = 0;
  virtual void Close();
};

/// The former PrintHeader/PrintRow format: commented section headers,
/// aligned columns, rows flushed as they are produced.
class TextSink : public ReportSink {
 public:
  TextSink(std::ostream* out, ReportMeta meta);
  void BeginSection(const std::string& title,
                    const std::string& subtitle) override;
  void AddRow(const ReportRow& row) override;

 private:
  std::ostream* out_;
  ReportMeta meta_;
};

/// Header line of the CSV format (no trailing newline).
const char* CsvHeader();

/// Flat CSV: CsvHeader() first, then one line per row; scale and
/// git_sha are repeated per row so concatenated files from different
/// commits stay self-describing.
class CsvSink : public ReportSink {
 public:
  CsvSink(std::ostream* out, ReportMeta meta);  // writes the header
  void AddRow(const ReportRow& row) override;

 private:
  std::ostream* out_;
  ReportMeta meta_;
};

/// JSON summary document, written on Close():
///   {"schema": "fairmatch-bench/v1", "scale": ..., "git_sha": ...,
///    "repeat": N, "figures": {"<name>": [row, ...], ...}}
/// Rows keep the driver's emission order within each figure.
class JsonSink : public ReportSink {
 public:
  JsonSink(std::ostream* out, ReportMeta meta);
  void AddRow(const ReportRow& row) override;
  void Close() override;

 private:
  std::ostream* out_;
  ReportMeta meta_;
  /// Grouped by figure, insertion-ordered.
  std::vector<std::pair<std::string, std::vector<ReportRow>>> figures_;
};

}  // namespace fairmatch::bench

#endif  // FAIRMATCH_BENCH_DRIVER_REPORT_H_

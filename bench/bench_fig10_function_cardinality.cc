// Figure 10: effect of the function cardinality |F| (anti-correlated).
#include "bench_common.h"

using namespace fairmatch;
using namespace fairmatch::bench;

int main() {
  PrintHeader("Figure 10: effect of function cardinality |F|",
              "anti-correlated, |O|=100k, D=4, x = |F| (paper-scale)");
  for (int nf : {1000, 2500, 5000, 10000, 20000}) {
    BenchConfig config;
    config.num_functions = nf;
    config = Scale(config);
    AssignmentProblem problem = BuildProblem(config);
    for (const char* algo : {"SB", "BruteForce", "Chain"}) {
      PrintRow(std::to_string(nf), Run(algo, problem, config));
    }
  }
  return 0;
}

// Figure 13: effect of the LRU buffer size (fraction of the object
// R-tree file). SB's I/O is flat (it never re-reads a node); the
// competitors improve with larger buffers.
#include "bench_common.h"

using namespace fairmatch;
using namespace fairmatch::bench;

int main() {
  PrintHeader("Figure 13: effect of the buffer size",
              "anti-correlated, |F|=5k, |O|=100k, D=4, x = buffer %");
  for (double buffer : {0.0, 0.01, 0.02, 0.05, 0.10}) {
    BenchConfig config;
    config.buffer_fraction = buffer;
    config = Scale(config);
    AssignmentProblem problem = BuildProblem(config);
    char label[16];
    std::snprintf(label, sizeof(label), "%.0f%%", buffer * 100);
    for (const char* algo : {"SB", "BruteForce", "Chain"}) {
      PrintRow(label, Run(algo, problem, config));
    }
  }
  return 0;
}

// Figure 12: effect of the preference weight distribution — functions
// drawn from C Gaussian clusters (stddev 0.05) on the weight simplex.
#include "bench_common.h"

using namespace fairmatch;
using namespace fairmatch::bench;

int main() {
  PrintHeader("Figure 12: effect of the function distribution",
              "anti-correlated, |F|=5k, |O|=100k, D=4, x = clusters C");
  for (int clusters : {1, 3, 5, 7, 9}) {
    BenchConfig config;
    config.weight_clusters = clusters;
    config = Scale(config);
    AssignmentProblem problem = BuildProblem(config);
    for (const char* algo : {"SB", "BruteForce", "Chain"}) {
      PrintRow(std::to_string(clusters), Run(algo, problem, config));
    }
  }
  return 0;
}

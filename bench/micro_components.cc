// google-benchmark microbenchmarks for the library's building blocks:
// R-tree construction and maintenance, BBS/UpdateSkyline, BRS ranked
// search, the TA reverse top-1 and the buffer pool.
#include <benchmark/benchmark.h>

#include "fairmatch/common/minmax_heap.h"
#include "fairmatch/common/rng.h"
#include "fairmatch/skyline/sky_arena.h"
#include "fairmatch/data/synthetic.h"
#include "fairmatch/rtree/node_store.h"
#include "fairmatch/rtree/rtree.h"
#include "fairmatch/skyline/bbs.h"
#include "fairmatch/storage/buffer_pool.h"
#include "fairmatch/topk/function_lists.h"
#include "fairmatch/topk/ranked_search.h"
#include "fairmatch/topk/reverse_top1.h"

namespace fairmatch {
namespace {

std::vector<ObjectRecord> Records(int n, int dims, uint64_t seed,
                                  Distribution dist) {
  Rng rng(seed);
  auto points = GeneratePoints(dist, n, dims, &rng);
  std::vector<ObjectRecord> records;
  records.reserve(n);
  for (int i = 0; i < n; ++i) records.push_back({points[i], i});
  return records;
}

void BM_RTreeBulkLoad(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto records = Records(n, 4, 1, Distribution::kIndependent);
  for (auto _ : state) {
    MemNodeStore store(4);
    RTree tree(&store);
    auto copy = records;
    tree.BulkLoad(std::move(copy));
    benchmark::DoNotOptimize(tree.root());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(10000)->Arg(100000);

void BM_RTreeInsert(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto records = Records(n, 4, 2, Distribution::kIndependent);
  for (auto _ : state) {
    MemNodeStore store(4);
    RTree tree(&store);
    for (const auto& r : records) tree.Insert(r.point, r.id);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RTreeInsert)->Arg(10000);

void BM_RTreeDelete(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto records = Records(n, 4, 3, Distribution::kIndependent);
  for (auto _ : state) {
    state.PauseTiming();
    MemNodeStore store(4);
    RTree tree(&store);
    auto copy = records;
    tree.BulkLoad(std::move(copy));
    state.ResumeTiming();
    for (const auto& r : records) tree.Delete(r.point, r.id);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RTreeDelete)->Arg(10000);

void BM_InitialSkylineBBS(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto records = Records(n, 4, 4, Distribution::kAntiCorrelated);
  MemNodeStore store(4);
  RTree tree(&store);
  tree.BulkLoad(std::move(records));
  for (auto _ : state) {
    SkylineManager mgr(&tree);
    mgr.ComputeInitial();
    benchmark::DoNotOptimize(mgr.skyline().size());
  }
}
BENCHMARK(BM_InitialSkylineBBS)->Arg(100000);

void BM_UpdateSkylineFullDrain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto records = Records(n, 3, 5, Distribution::kAntiCorrelated);
  MemNodeStore store(3);
  RTree tree(&store);
  tree.BulkLoad(std::move(records));
  for (auto _ : state) {
    SkylineManager mgr(&tree);
    mgr.ComputeInitial();
    while (mgr.skyline().size() > 0) {
      std::vector<ObjectId> victims;
      mgr.skyline().ForEach([&](int, const SkylineObject& m) {
        victims.push_back(m.id);
      });
      mgr.RemoveAndUpdate(victims);
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UpdateSkylineFullDrain)->Arg(20000);

void BM_RankedSearchTop1(benchmark::State& state) {
  auto records = Records(100000, 4, 6, Distribution::kAntiCorrelated);
  MemNodeStore store(4);
  RTree tree(&store);
  tree.BulkLoad(std::move(records));
  Rng rng(7);
  FunctionSet fns = GenerateFunctions(64, 4, &rng);
  size_t i = 0;
  for (auto _ : state) {
    RankedSearch search(&tree, &fns[i++ % fns.size()]);
    benchmark::DoNotOptimize(search.Next());
  }
}
BENCHMARK(BM_RankedSearchTop1);

void BM_ReverseTop1(benchmark::State& state) {
  const int nf = static_cast<int>(state.range(0));
  Rng rng(8);
  FunctionSet fns = GenerateFunctions(nf, 4, &rng);
  FunctionLists lists(&fns);
  ReverseTop1 rt1(&lists, ReverseTop1Options{});
  auto points = GeneratePoints(Distribution::kAntiCorrelated, 256, 4, &rng);
  std::vector<uint8_t> assigned(fns.size(), 0);
  size_t i = 0;
  for (auto _ : state) {
    ReverseTop1State st;
    benchmark::DoNotOptimize(
        rt1.Best(&st, points[i++ % points.size()], assigned));
  }
}
BENCHMARK(BM_ReverseTop1)->Arg(5000)->Arg(20000);

// The reverse-top-1 queue workload: interleaved push / evict-worst /
// pop-best on a capacity-bounded double-ended queue. The seed paid
// O(cap) vector shifts per operation; the min-max heap pays O(log cap).
void BM_MinMaxHeapBoundedChurn(benchmark::State& state) {
  const int cap = static_cast<int>(state.range(0));
  Rng rng(77);
  std::vector<double> keys(1 << 16);
  for (double& k : keys) k = rng.Uniform();
  struct Item {
    double score;
    int id;
    bool operator<(const Item& other) const {
      if (score != other.score) return score > other.score;
      return id < other.id;
    }
  };
  size_t i = 0;
  for (auto _ : state) {
    MinMaxHeap<Item> heap;
    for (int op = 0; op < 4 * cap; ++op) {
      heap.push(Item{keys[i++ & 0xffff], op});
      if (static_cast<int>(heap.size()) > cap) heap.pop_max();
      if ((op & 7) == 7) heap.pop_min();
    }
    benchmark::DoNotOptimize(heap.size());
  }
  state.SetItemsProcessed(state.iterations() * 4 * cap);
}
BENCHMARK(BM_MinMaxHeapBoundedChurn)->Arg(64)->Arg(512)->Arg(4096);

// Arena alloc/free churn in the BBS park/expand pattern: allocate a
// wave of entries, free every other one, allocate again (freelist
// reuse), then drain.
void BM_SkyEntryArenaChurn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(78);
  auto points = GeneratePoints(Distribution::kIndependent, 256, 4, &rng);
  for (auto _ : state) {
    SkyEntryArena arena;
    std::vector<uint32_t> handles;
    handles.reserve(n);
    for (int i = 0; i < n; ++i) {
      handles.push_back(
          arena.Alloc(SkyEntry::ForObject(points[i & 255], i)));
    }
    for (int i = 0; i < n; i += 2) arena.Free(handles[i]);
    for (int i = 0; i < n; i += 2) {
      handles[i] = arena.Alloc(SkyEntry::ForObject(points[i & 255], i));
    }
    for (int i = 0; i < n; ++i) arena.Free(handles[i]);
    benchmark::DoNotOptimize(arena.high_water());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SkyEntryArenaChurn)->Arg(4096)->Arg(65536);

void BM_BufferPoolFetchHit(benchmark::State& state) {
  DiskManager disk;
  PerfCounters counters;
  BufferPool pool(&disk, 64, &counters);
  PageId pid;
  {
    PageHandle h = pool.NewPage();
    pid = h.page_id();
  }
  for (auto _ : state) {
    PageHandle h = pool.FetchPage(pid);
    benchmark::DoNotOptimize(h.bytes());
  }
}
BENCHMARK(BM_BufferPoolFetchHit);

void BM_BufferPoolFetchMiss(benchmark::State& state) {
  DiskManager disk;
  PerfCounters counters;
  BufferPool pool(&disk, 0, &counters);  // 0% buffer: every fetch misses
  PageId pid;
  {
    PageHandle h = pool.NewPage();
    pid = h.page_id();
  }
  pool.FlushAll();
  for (auto _ : state) {
    PageHandle h = pool.FetchPage(pid);
    benchmark::DoNotOptimize(h.bytes());
  }
}
BENCHMARK(BM_BufferPoolFetchMiss);

}  // namespace
}  // namespace fairmatch

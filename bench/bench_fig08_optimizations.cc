// Figure 8: effectiveness of the Section 5 optimizations.
// Anti-correlated objects, |F| = 1000, D in {3, 4, 5}:
// SB vs SB-UpdateSkyline (no 5.1/5.3) vs SB-DeltaSky.
#include "bench_common.h"

using namespace fairmatch;
using namespace fairmatch::bench;

int main() {
  PrintHeader("Figure 8: effect of the optimization techniques",
              "anti-correlated, |F|=1000, |O|=100k, x = dimensionality D");
  for (int dims : {3, 4, 5}) {
    BenchConfig config;
    config.num_functions = 1000;
    config.dims = dims;
    config = Scale(config);
    AssignmentProblem problem = BuildProblem(config);
    for (const char* algo : {"SB", "SB-UpdateSkyline", "SB-DeltaSky"}) {
      PrintRow(std::to_string(dims), Run(algo, problem, config));
    }
  }
  return 0;
}

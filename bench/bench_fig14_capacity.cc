// Figure 14: capacitated assignment. (a,b) functions with capacity k —
// the problem grows to k*|F| pairs; (c,d) objects with capacity k —
// fewer searches and skyline updates are needed.
#include "bench_common.h"

using namespace fairmatch;
using namespace fairmatch::bench;

int main() {
  PrintHeader("Figure 14(a,b): effect of function capacity",
              "anti-correlated, |F|=5k, |O|=100k, D=4, x = capacity k");
  for (int k : {2, 4, 8, 16}) {
    BenchConfig config;
    config.function_capacity = k;
    config = Scale(config);
    AssignmentProblem problem = BuildProblem(config);
    for (const char* algo : {"SB", "BruteForce", "Chain"}) {
      PrintRow(std::to_string(k), Run(algo, problem, config));
    }
  }

  PrintHeader("Figure 14(c,d): effect of object capacity",
              "anti-correlated, |F|=5k, |O|=100k, D=4, x = capacity k");
  for (int k : {2, 4, 8, 16}) {
    BenchConfig config;
    config.object_capacity = k;
    config = Scale(config);
    AssignmentProblem problem = BuildProblem(config);
    for (const char* algo : {"SB", "BruteForce", "Chain"}) {
      PrintRow(std::to_string(k), Run(algo, problem, config));
    }
  }
  return 0;
}

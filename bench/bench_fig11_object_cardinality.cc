// Figure 11: effect of the object cardinality |O| (anti-correlated).
#include "bench_common.h"

using namespace fairmatch;
using namespace fairmatch::bench;

int main() {
  PrintHeader("Figure 11: effect of object cardinality |O|",
              "anti-correlated, |F|=5k, D=4, x = |O| (paper-scale)");
  for (int no : {10000, 50000, 100000, 200000, 400000}) {
    BenchConfig config;
    config.num_objects = no;
    config = Scale(config);
    AssignmentProblem problem = BuildProblem(config);
    for (const char* algo : {"SB", "BruteForce", "Chain"}) {
      PrintRow(std::to_string(no), Run(algo, problem, config));
    }
  }
  return 0;
}

// Figure 9: effect of dimensionality D on all three synthetic
// distributions — I/O (a-c), CPU (d-f) and memory (g-i) are all columns
// of the printed rows.
#include "bench_common.h"

using namespace fairmatch;
using namespace fairmatch::bench;

int main() {
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kCorrelated,
        Distribution::kAntiCorrelated}) {
    PrintHeader(std::string("Figure 9: effect of dimensionality (") +
                    DistributionName(dist) + ")",
                "|F|=5k, |O|=100k, x = dimensionality D");
    for (int dims : {3, 4, 5, 6}) {
      BenchConfig config;
      config.dims = dims;
      config.distribution = dist;
      config = Scale(config);
      AssignmentProblem problem = BuildProblem(config);
      for (const char* algo : {"SB", "BruteForce", "Chain"}) {
        PrintRow(std::to_string(dims), Run(algo, problem, config));
      }
    }
  }
  return 0;
}

// Shared harness for the per-figure benchmark binaries.
//
// Every bench prints rows of the form
//   <x> <algorithm> <io_accesses> <cpu_ms> <mem_mb> <pairs> <loops>
// matching the series the paper's figures plot (I/O cost, CPU time,
// memory usage). Scale is controlled by FAIRMATCH_SCALE:
//   paper  — Table 2 parameter values
//   quick  — cardinalities divided by 4 (default; same shapes)
//   smoke  — tiny sizes for CI smoke runs
#ifndef FAIRMATCH_BENCH_BENCH_COMMON_H_
#define FAIRMATCH_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "fairmatch/assign/problem.h"
#include "fairmatch/data/synthetic.h"

namespace fairmatch::bench {

/// Scale multiplier from FAIRMATCH_SCALE (paper=1, quick=0.25,
/// smoke=0.02).
double ScaleFactor();
const char* ScaleName();

/// value * ScaleFactor(), at least `floor`.
int Scaled(int paper_value, int floor = 1);

/// One experiment configuration (Table 2 defaults).
struct BenchConfig {
  int num_functions = 5000;
  int num_objects = 100000;
  int dims = 4;
  Distribution distribution = Distribution::kAntiCorrelated;
  double buffer_fraction = 0.02;
  int function_capacity = 1;
  int object_capacity = 1;
  int max_gamma = 1;
  int weight_clusters = 0;  // 0 = independent weights (Figure 12 sets >0)
  uint64_t seed = 20090824;

  /// Pre-generated object points override the synthetic generator
  /// (used by the real-data benches).
  const std::vector<Point>* points_override = nullptr;
};

/// Applies ScaleFactor() to the cardinalities.
BenchConfig Scale(BenchConfig config);

/// Generates the problem instance for a configuration.
AssignmentProblem BuildProblem(const BenchConfig& config);

/// Algorithms runnable by the harness.
enum class Algo {
  kSB,                // fully optimized SB
  kSBUpdateSkyline,   // Algorithm 1 + UpdateSkyline, no 5.1/5.3 opts
  kSBDeltaSky,        // Algorithm 1 + DeltaSky, no 5.1/5.3 opts
  kSBTwoSkylines,     // Section 6.2 variant
  kBruteForce,
  kChain,
  // Disk-resident-F setting (Figure 17): objects in memory, function
  // lists on the simulated disk.
  kSBDiskF,
  kSBAlt,
  kBruteForceDiskF,
  kChainDiskF,
};

const char* AlgoName(Algo algo);

/// One result row.
struct RunRow {
  std::string algo;
  int64_t io = 0;
  double cpu_ms = 0.0;
  double mem_mb = 0.0;
  size_t pairs = 0;
  int64_t loops = 0;
};

/// Runs `algo` on a fresh R-tree built from `problem`. The object tree
/// is disk-paged for the standard algorithms and memory-resident for
/// the disk-F ones, per the paper's Section 7 / 7.6 settings.
RunRow Run(Algo algo, const AssignmentProblem& problem,
           const BenchConfig& config);

/// Output helpers.
void PrintHeader(const std::string& figure, const std::string& subtitle);
void PrintRow(const std::string& x, const RunRow& row);

}  // namespace fairmatch::bench

#endif  // FAIRMATCH_BENCH_BENCH_COMMON_H_

// Shared harness for the per-figure benchmark binaries.
//
// Every bench prints rows of the form
//   <x> <algorithm> <io_accesses> <cpu_ms> <mem_mb> <pairs> <loops>
// matching the series the paper's figures plot (I/O cost, CPU time,
// memory usage). Scale is controlled by FAIRMATCH_SCALE:
//   paper  — Table 2 parameter values
//   quick  — cardinalities divided by 4 (default; same shapes)
//   smoke  — tiny sizes for CI smoke runs
#ifndef FAIRMATCH_BENCH_BENCH_COMMON_H_
#define FAIRMATCH_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "fairmatch/assign/problem.h"
#include "fairmatch/data/synthetic.h"

namespace fairmatch::bench {

/// Scale multiplier from FAIRMATCH_SCALE (paper=1, quick=0.25,
/// smoke=0.02).
double ScaleFactor();
const char* ScaleName();

/// value * ScaleFactor(), at least `floor`.
int Scaled(int paper_value, int floor = 1);

/// One experiment configuration (Table 2 defaults).
struct BenchConfig {
  int num_functions = 5000;
  int num_objects = 100000;
  int dims = 4;
  Distribution distribution = Distribution::kAntiCorrelated;
  double buffer_fraction = 0.02;
  int function_capacity = 1;
  int object_capacity = 1;
  int max_gamma = 1;
  int weight_clusters = 0;  // 0 = independent weights (Figure 12 sets >0)
  uint64_t seed = 20090824;

  /// Section 7.6 setting (Figure 17): objects in a main-memory R-tree,
  /// function lists on the simulated disk. When false (the standard
  /// setting), objects live on the simulated disk behind the LRU buffer
  /// and functions are indexed in memory.
  bool disk_resident_functions = false;

  /// Pre-generated object points override the synthetic generator
  /// (used by the real-data benches).
  const std::vector<Point>* points_override = nullptr;
};

/// Applies ScaleFactor() to the cardinalities.
BenchConfig Scale(BenchConfig config);

/// Generates the problem instance for a configuration.
AssignmentProblem BuildProblem(const BenchConfig& config);

/// Runs the registered matcher `name` (engine/registry.h) on a fresh
/// R-tree built from `problem`, with storage laid out per
/// `config.disk_resident_functions` (Section 7 vs 7.6 settings) and all
/// instrumentation aggregated through one ExecContext. Unknown names
/// abort with a message listing the registry contents.
RunStats Run(const std::string& name, const AssignmentProblem& problem,
             const BenchConfig& config);

/// Output helpers.
void PrintHeader(const std::string& figure, const std::string& subtitle);
void PrintRow(const std::string& x, const RunStats& stats);

}  // namespace fairmatch::bench

#endif  // FAIRMATCH_BENCH_BENCH_COMMON_H_

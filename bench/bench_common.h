// Shared harness for the fairmatch_bench driver (bench/driver/).
//
// Provides the experiment configuration (Table 2 defaults), problem
// generation, and the uniform measured-run entry point every figure in
// the FigureRegistry goes through. Measured rows carry the series the
// paper's figures plot (I/O cost, CPU time, memory usage) plus
// provenance (seed, scale, git sha); serialization lives in
// bench/driver/report.h.
//
// Scale is selected by the driver's --scale flag (SetScale) and falls
// back to the FAIRMATCH_SCALE environment variable:
//   paper  — Table 2 parameter values
//   quick  — cardinalities divided by 4 (default; same shapes)
//   smoke  — tiny sizes for CI smoke runs
#ifndef FAIRMATCH_BENCH_BENCH_COMMON_H_
#define FAIRMATCH_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "fairmatch/assign/problem.h"
#include "fairmatch/data/synthetic.h"

namespace fairmatch::bench {

/// Scale multiplier for the current scale (paper=1, quick=0.25,
/// smoke=0.02).
double ScaleFactor();

/// The current scale name. Unrecognized FAIRMATCH_SCALE values resolve
/// to the default ("quick").
const char* ScaleName();

/// Overrides FAIRMATCH_SCALE programmatically. Returns false (and
/// changes nothing) for names other than paper / quick / smoke.
bool SetScale(const std::string& name);

/// value * ScaleFactor(), at least `floor`.
int Scaled(int paper_value, int floor = 1);

/// One experiment configuration (Table 2 defaults).
struct BenchConfig {
  int num_functions = 5000;
  int num_objects = 100000;
  int dims = 4;
  Distribution distribution = Distribution::kAntiCorrelated;
  double buffer_fraction = 0.02;
  int function_capacity = 1;
  int object_capacity = 1;
  int max_gamma = 1;
  int weight_clusters = 0;  // 0 = independent weights (Figure 12 sets >0)
  uint64_t seed = 20090824;

  /// Section 7.6 setting (Figure 17): objects in a main-memory R-tree,
  /// function lists on the simulated disk. When false (the standard
  /// setting), objects live on the simulated disk behind the LRU buffer
  /// and functions are indexed in memory.
  bool disk_resident_functions = false;

  /// Pre-generated object points override the synthetic generator
  /// (used by the real-data benches).
  const std::vector<Point>* points_override = nullptr;
};

/// Applies ScaleFactor() to the cardinalities.
BenchConfig Scale(BenchConfig config);

/// Parameters of the batch_throughput figure, set by the driver's
/// --threads / --batch flags before figures expand (like SetScale).
struct BatchBenchParams {
  /// Worker-lane counts swept as the figure's x axis.
  std::vector<int> threads = {1, 2, 4, 8};
  /// Independent problem instances per batch; 0 picks the scale
  /// default (Scaled(64), at least 8).
  int batch_items = 0;
};
void SetBatchBenchParams(BatchBenchParams params);
const BatchBenchParams& GetBatchBenchParams();

/// Parameters of the serving_latency figure, set by the driver's
/// --serve-lanes / --arrival / --requests flags before figures expand.
struct ServeBenchParams {
  /// Server lane counts swept as the figure's x axis.
  std::vector<int> lanes = {1, 2, 4};
  /// Open-loop arrival rates (requests/second), one section each.
  std::vector<int> arrival_per_sec = {100, 400};
  /// Requests per experiment; 0 picks the scale default (Scaled(192),
  /// at least 24).
  int requests = 0;
};
void SetServeBenchParams(ServeBenchParams params);
const ServeBenchParams& GetServeBenchParams();

/// True iff the two configurations generate the same problem instance
/// (BuildProblem inputs match; run-time knobs like the buffer fraction
/// are ignored). The driver uses this to share one generated problem
/// across consecutive runs.
bool SameProblemInputs(const BenchConfig& a, const BenchConfig& b);

/// Generates the problem instance for a configuration.
AssignmentProblem BuildProblem(const BenchConfig& config);

/// Empty if the registered matcher `name` can run under `config`;
/// otherwise a diagnostic: unknown name (with the registry listing),
/// reference oracle, or missing disk-resident-F setting. Run() aborts
/// on exactly these conditions — callers that want a clean non-zero
/// exit validate with this first (the driver does, up front).
std::string CheckRunnable(const std::string& name, const BenchConfig& config);

/// Runs the registered matcher `name` (engine/registry.h) on a fresh
/// R-tree built from `problem`, with storage laid out per
/// `config.disk_resident_functions` (Section 7 vs 7.6 settings) and all
/// instrumentation aggregated through one ExecContext. Aborts on the
/// conditions CheckRunnable() reports.
RunStats Run(const std::string& name, const AssignmentProblem& problem,
             const BenchConfig& config);

}  // namespace fairmatch::bench

#endif  // FAIRMATCH_BENCH_BENCH_COMMON_H_

// Ablation bench (ours, beyond the paper's figures): isolates each SB
// design choice called out in DESIGN.md — the Omega queue cap, biased
// vs round-robin probing, resumable searches, and multi-pair loops.
#include "bench_common.h"
#include "fairmatch/assign/sb.h"
#include "fairmatch/engine/exec_context.h"
#include "fairmatch/rtree/node_store.h"

using namespace fairmatch;
using namespace fairmatch::bench;

namespace {

// Option-level sweeps (omega, probing, resume) are SBOptions knobs, not
// registry variants, so this bench constructs SB directly — but it
// instruments through the same ExecContext as the engine.
RunStats RunSBWith(const AssignmentProblem& problem,
                   const BenchConfig& config, const SBOptions& options,
                   const char* name) {
  ExecContext ctx;
  PagedNodeStore store(problem.dims, 4096, &ctx.counters());
  RTree tree(&store);
  BuildObjectTree(problem, &tree);
  store.ResetCounters();
  store.SetBufferFraction(config.buffer_fraction);
  ctx.BeginRun();
  SBAssignment sb(&problem, &tree, options, nullptr, &ctx);
  AssignResult result = sb.Run();
  result.stats.algorithm = name;
  result.stats.pairs = result.matching.size();
  ctx.Finish(&result.stats);
  return result.stats;
}

}  // namespace

int main() {
  BenchConfig config;
  config = Scale(config);
  AssignmentProblem problem = BuildProblem(config);

  PrintHeader("Ablation A: Omega (resume-queue capacity, % of |F|)",
              "anti-correlated defaults; x = omega");
  for (double omega : {0.005, 0.01, 0.025, 0.05, 0.10}) {
    SBOptions options;
    options.ta.omega = omega;
    char label[16];
    std::snprintf(label, sizeof(label), "%.1f%%", omega * 100);
    PrintRow(label, RunSBWith(problem, config, options, "SB"));
  }

  PrintHeader("Ablation B: TA probing and resume strategy",
              "anti-correlated defaults; x = strategy");
  {
    SBOptions options;
    PrintRow("biased", RunSBWith(problem, config, options, "SB"));
  }
  {
    SBOptions options;
    options.ta.biased_probing = false;
    PrintRow("round-robin", RunSBWith(problem, config, options, "SB"));
  }
  {
    SBOptions options;
    options.ta.resume = false;
    PrintRow("no-resume", RunSBWith(problem, config, options, "SB"));
  }

  PrintHeader("Ablation C: multiple pairs per loop (Section 5.3)",
              "anti-correlated defaults; x = mode");
  {
    SBOptions options;
    PrintRow("multi-pair", RunSBWith(problem, config, options, "SB"));
  }
  {
    SBOptions options;
    options.multi_pair = false;
    PrintRow("single-pair", RunSBWith(problem, config, options, "SB"));
  }
  return 0;
}

// Figure 17: disk-resident functions (Section 7.6). The cardinalities
// of F and O are swapped relative to the defaults: |F|=100k on the
// simulated disk (sorted coefficient lists), |O|=5k in a main-memory
// R-tree. SB-alt's batch best-pair search saves the I/O.
#include "bench_common.h"

using namespace fairmatch;
using namespace fairmatch::bench;

int main() {
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kAntiCorrelated}) {
    PrintHeader(std::string("Figure 17: disk-resident F (") +
                    DistributionName(dist) + ")",
                "|F|=100k on disk, |O|=5k in memory, x = dimensionality D");
    for (int dims : {3, 4, 5, 6}) {
      BenchConfig config;
      config.num_functions = 100000;
      config.num_objects = 5000;
      config.dims = dims;
      config.distribution = dist;
      config.disk_resident_functions = true;
      config = Scale(config);
      AssignmentProblem problem = BuildProblem(config);
      for (const char* algo : {"SB", "SB-alt", "BruteForce", "Chain"}) {
        PrintRow(std::to_string(dims), Run(algo, problem, config));
      }
    }
  }
  return 0;
}

#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "fairmatch/assign/brute_force.h"
#include "fairmatch/assign/chain.h"
#include "fairmatch/assign/sb.h"
#include "fairmatch/assign/sb_alt.h"
#include "fairmatch/assign/two_skyline.h"
#include "fairmatch/common/rng.h"
#include "fairmatch/rtree/node_store.h"
#include "fairmatch/topk/disk_function_lists.h"

namespace fairmatch::bench {

double ScaleFactor() {
  const char* env = std::getenv("FAIRMATCH_SCALE");
  if (env == nullptr || std::strcmp(env, "quick") == 0) return 0.25;
  if (std::strcmp(env, "paper") == 0) return 1.0;
  if (std::strcmp(env, "smoke") == 0) return 0.02;
  return 0.25;
}

const char* ScaleName() {
  const char* env = std::getenv("FAIRMATCH_SCALE");
  if (env == nullptr) return "quick";
  return env;
}

int Scaled(int paper_value, int floor) {
  int v = static_cast<int>(paper_value * ScaleFactor());
  return v < floor ? floor : v;
}

BenchConfig Scale(BenchConfig config) {
  config.num_functions = Scaled(config.num_functions, 10);
  config.num_objects = Scaled(config.num_objects, 100);
  return config;
}

AssignmentProblem BuildProblem(const BenchConfig& config) {
  Rng rng(config.seed);
  std::vector<Point> points;
  if (config.points_override != nullptr) {
    points.assign(config.points_override->begin(),
                  config.points_override->begin() + config.num_objects);
  } else {
    points = GeneratePoints(config.distribution, config.num_objects,
                            config.dims, &rng);
  }
  FunctionSet fns =
      config.weight_clusters > 0
          ? GenerateClusteredFunctions(config.num_functions, config.dims,
                                       config.weight_clusters, 0.05, &rng)
          : GenerateFunctions(config.num_functions, config.dims, &rng);
  if (config.max_gamma > 1) AssignPriorities(&fns, config.max_gamma, &rng);
  if (config.function_capacity != 1) {
    SetFunctionCapacities(&fns, config.function_capacity);
  }
  return MakeProblem(std::move(points), std::move(fns),
                     config.object_capacity);
}

const char* AlgoName(Algo algo) {
  switch (algo) {
    case Algo::kSB:
      return "SB";
    case Algo::kSBUpdateSkyline:
      return "SB-UpdateSkyline";
    case Algo::kSBDeltaSky:
      return "SB-DeltaSky";
    case Algo::kSBTwoSkylines:
      return "SB-TwoSkylines";
    case Algo::kBruteForce:
      return "BruteForce";
    case Algo::kChain:
      return "Chain";
    case Algo::kSBDiskF:
      return "SB";
    case Algo::kSBAlt:
      return "SB-alt";
    case Algo::kBruteForceDiskF:
      return "BruteForce";
    case Algo::kChainDiskF:
      return "Chain";
  }
  return "?";
}

namespace {

bool IsDiskF(Algo algo) {
  return algo == Algo::kSBDiskF || algo == Algo::kSBAlt ||
         algo == Algo::kBruteForceDiskF || algo == Algo::kChainDiskF;
}

RunRow Finish(Algo algo, const AssignResult& result, int64_t io) {
  RunRow row;
  row.algo = AlgoName(algo);
  row.io = io;
  row.cpu_ms = result.stats.cpu_ms;
  row.mem_mb = result.stats.peak_memory_mb();
  row.pairs = result.matching.size();
  row.loops = result.stats.loops;
  return row;
}

}  // namespace

RunRow Run(Algo algo, const AssignmentProblem& problem,
           const BenchConfig& config) {
  if (IsDiskF(algo)) {
    // Section 7.6 setting: O fits in memory, F lives on disk.
    MemNodeStore store(problem.dims);
    RTree tree(&store);
    BuildObjectTree(problem, &tree);
    DiskFunctionStore fstore(problem.functions, config.buffer_fraction);
    AssignResult result;
    switch (algo) {
      case Algo::kSBDiskF: {
        SBAssignment sb(&problem, &tree, SBOptions{}, &fstore);
        result = sb.Run();
        break;
      }
      case Algo::kSBAlt:
        result = SBAltAssignment(problem, tree, &fstore);
        break;
      case Algo::kBruteForceDiskF: {
        BruteForceOptions options;
        options.disk_functions = &fstore;
        result = BruteForceAssignment(problem, tree, options);
        break;
      }
      case Algo::kChainDiskF: {
        ChainOptions options;
        options.disk_functions = &fstore;
        options.function_tree_buffer = config.buffer_fraction;
        result = ChainAssignment(problem, &tree, options);
        break;
      }
      default:
        break;
    }
    // Coefficient-store traffic plus any algorithm-private disk I/O
    // (Chain's disk-resident function R-tree).
    return Finish(algo, result,
                  fstore.counters().io_accesses() +
                      result.stats.io_accesses);
  }

  // Standard setting: O on the simulated disk behind the LRU buffer.
  PagedNodeStore store(problem.dims, /*buffer_frames=*/4096);
  RTree tree(&store);
  BuildObjectTree(problem, &tree);
  store.ResetCounters();
  store.SetBufferFraction(config.buffer_fraction);

  AssignResult result;
  switch (algo) {
    case Algo::kSB: {
      SBAssignment sb(&problem, &tree, SBOptions{});
      result = sb.Run();
      break;
    }
    case Algo::kSBUpdateSkyline: {
      SBOptions options;
      options.best_pair_mode = BestPairMode::kExhaustive;
      options.multi_pair = false;
      SBAssignment sb(&problem, &tree, options);
      result = sb.Run();
      break;
    }
    case Algo::kSBDeltaSky: {
      SBOptions options;
      options.skyline_mode = SkylineMode::kDeltaSky;
      options.best_pair_mode = BestPairMode::kExhaustive;
      options.multi_pair = false;
      SBAssignment sb(&problem, &tree, options);
      result = sb.Run();
      break;
    }
    case Algo::kSBTwoSkylines:
      result = TwoSkylineAssignment(problem, tree);
      break;
    case Algo::kBruteForce:
      result = BruteForceAssignment(problem, tree);
      break;
    case Algo::kChain:
      result = ChainAssignment(problem, &tree);
      break;
    default:
      break;
  }
  return Finish(algo, result, store.counters().io_accesses());
}

void PrintHeader(const std::string& figure, const std::string& subtitle) {
  std::printf("# %s\n", figure.c_str());
  std::printf("# %s  [scale=%s]\n", subtitle.c_str(), ScaleName());
  std::printf("# %-10s %-18s %12s %12s %10s %8s %8s\n", "x", "algo",
              "io_accesses", "cpu_ms", "mem_mb", "pairs", "loops");
  std::fflush(stdout);
}

void PrintRow(const std::string& x, const RunRow& row) {
  std::printf("%-12s %-18s %12lld %12.1f %10.2f %8zu %8lld\n", x.c_str(),
              row.algo.c_str(), static_cast<long long>(row.io), row.cpu_ms,
              row.mem_mb, row.pairs, static_cast<long long>(row.loops));
  std::fflush(stdout);
}

}  // namespace fairmatch::bench

#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>

#include "fairmatch/common/check.h"
#include "fairmatch/common/rng.h"
#include "fairmatch/engine/registry.h"
#include "fairmatch/rtree/node_store.h"
#include "fairmatch/topk/disk_function_lists.h"

namespace fairmatch::bench {

double ScaleFactor() {
  const char* env = std::getenv("FAIRMATCH_SCALE");
  if (env == nullptr || std::strcmp(env, "quick") == 0) return 0.25;
  if (std::strcmp(env, "paper") == 0) return 1.0;
  if (std::strcmp(env, "smoke") == 0) return 0.02;
  return 0.25;
}

const char* ScaleName() {
  const char* env = std::getenv("FAIRMATCH_SCALE");
  if (env == nullptr) return "quick";
  return env;
}

int Scaled(int paper_value, int floor) {
  int v = static_cast<int>(paper_value * ScaleFactor());
  return v < floor ? floor : v;
}

BenchConfig Scale(BenchConfig config) {
  config.num_functions = Scaled(config.num_functions, 10);
  config.num_objects = Scaled(config.num_objects, 100);
  return config;
}

AssignmentProblem BuildProblem(const BenchConfig& config) {
  Rng rng(config.seed);
  std::vector<Point> points;
  if (config.points_override != nullptr) {
    points.assign(config.points_override->begin(),
                  config.points_override->begin() + config.num_objects);
  } else {
    points = GeneratePoints(config.distribution, config.num_objects,
                            config.dims, &rng);
  }
  FunctionSet fns =
      config.weight_clusters > 0
          ? GenerateClusteredFunctions(config.num_functions, config.dims,
                                       config.weight_clusters, 0.05, &rng)
          : GenerateFunctions(config.num_functions, config.dims, &rng);
  if (config.max_gamma > 1) AssignPriorities(&fns, config.max_gamma, &rng);
  if (config.function_capacity != 1) {
    SetFunctionCapacities(&fns, config.function_capacity);
  }
  return MakeProblem(std::move(points), std::move(fns),
                     config.object_capacity);
}

RunStats Run(const std::string& name, const AssignmentProblem& problem,
             const BenchConfig& config) {
  const MatcherRegistry& registry = MatcherRegistry::Global();
  const MatcherInfo* info = registry.Find(name);
  if (info == nullptr) {
    std::fprintf(stderr, "unknown matcher '%s'; registered:\n", name.c_str());
    for (const std::string& n : registry.Names()) {
      std::fprintf(stderr, "  %s\n", n.c_str());
    }
    std::abort();
  }
  if (info->needs_disk_functions && !config.disk_resident_functions) {
    std::fprintf(stderr,
                 "matcher '%s' requires the disk-resident-F setting; set "
                 "BenchConfig::disk_resident_functions\n",
                 name.c_str());
    std::abort();
  }
  if (info->reference) {
    std::fprintf(stderr,
                 "matcher '%s' is a reference oracle (O(P*|F|*|O|)); it is "
                 "excluded from benches\n",
                 name.c_str());
    std::abort();
  }

  // One shared instrumentation context per measured run: every storage
  // entity below counts its simulated-disk traffic here.
  ExecContext ctx;
  MatcherEnv env;
  env.problem = &problem;
  env.buffer_fraction = config.buffer_fraction;
  env.ctx = &ctx;

  // Storage layout per the paper's Section 7 / 7.6 settings. Objects on
  // the paged store (standard) or in memory (disk-F); the function
  // lists on disk only in the disk-F setting.
  std::optional<PagedNodeStore> paged_store;
  std::optional<MemNodeStore> mem_store;
  std::optional<DiskFunctionStore> fstore;
  std::optional<RTree> tree;
  if (config.disk_resident_functions) {
    mem_store.emplace(problem.dims);
    tree.emplace(&*mem_store);
    BuildObjectTree(problem, &*tree);
    fstore.emplace(problem.functions, config.buffer_fraction,
                   &ctx.counters());
    env.fn_store = &*fstore;
  } else {
    paged_store.emplace(problem.dims, /*buffer_frames=*/4096,
                        &ctx.counters());
    tree.emplace(&*paged_store);
    BuildObjectTree(problem, &*tree);
    paged_store->ResetCounters();  // exclude the build phase
    paged_store->SetBufferFraction(config.buffer_fraction);
  }
  env.tree = &*tree;

  std::unique_ptr<Matcher> matcher = registry.Create(name, env);
  FAIRMATCH_CHECK(matcher != nullptr);
  return matcher->Run().stats;
}

void PrintHeader(const std::string& figure, const std::string& subtitle) {
  std::printf("# %s\n", figure.c_str());
  std::printf("# %s  [scale=%s]\n", subtitle.c_str(), ScaleName());
  std::printf("# %-10s %-18s %12s %12s %10s %8s %8s\n", "x", "algo",
              "io_accesses", "cpu_ms", "mem_mb", "pairs", "loops");
  std::fflush(stdout);
}

void PrintRow(const std::string& x, const RunStats& stats) {
  std::printf("%-12s %-18s %12lld %12.1f %10.2f %8zu %8lld\n", x.c_str(),
              stats.algorithm.c_str(),
              static_cast<long long>(stats.io_accesses), stats.cpu_ms,
              stats.peak_memory_mb(), stats.pairs,
              static_cast<long long>(stats.loops));
  std::fflush(stdout);
}

}  // namespace fairmatch::bench

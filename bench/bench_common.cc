#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <utility>

#include "fairmatch/common/check.h"
#include "fairmatch/common/rng.h"
#include "fairmatch/engine/registry.h"
#include "fairmatch/rtree/node_store.h"
#include "fairmatch/topk/disk_function_lists.h"

namespace fairmatch::bench {

namespace {

/// --scale override; empty means "use FAIRMATCH_SCALE".
std::string g_scale_override;

/// --threads / --batch state for the batch_throughput figure.
BatchBenchParams g_batch_params;

/// --serve-lanes / --arrival / --requests state for serving_latency.
ServeBenchParams g_serve_params;

bool KnownScale(const char* name) {
  return std::strcmp(name, "paper") == 0 || std::strcmp(name, "quick") == 0 ||
         std::strcmp(name, "smoke") == 0;
}

}  // namespace

const char* ScaleName() {
  if (!g_scale_override.empty()) return g_scale_override.c_str();
  const char* env = std::getenv("FAIRMATCH_SCALE");
  if (env == nullptr || !KnownScale(env)) return "quick";
  return env;
}

double ScaleFactor() {
  const char* name = ScaleName();
  if (std::strcmp(name, "paper") == 0) return 1.0;
  if (std::strcmp(name, "smoke") == 0) return 0.02;
  return 0.25;
}

bool SetScale(const std::string& name) {
  if (!KnownScale(name.c_str())) return false;
  g_scale_override = name;
  return true;
}

int Scaled(int paper_value, int floor) {
  int v = static_cast<int>(paper_value * ScaleFactor());
  return v < floor ? floor : v;
}

BenchConfig Scale(BenchConfig config) {
  config.num_functions = Scaled(config.num_functions, 10);
  config.num_objects = Scaled(config.num_objects, 100);
  return config;
}

void SetBatchBenchParams(BatchBenchParams params) {
  g_batch_params = std::move(params);
}

const BatchBenchParams& GetBatchBenchParams() { return g_batch_params; }

void SetServeBenchParams(ServeBenchParams params) {
  g_serve_params = std::move(params);
}

const ServeBenchParams& GetServeBenchParams() { return g_serve_params; }

bool SameProblemInputs(const BenchConfig& a, const BenchConfig& b) {
  return a.num_functions == b.num_functions &&
         a.num_objects == b.num_objects && a.dims == b.dims &&
         a.distribution == b.distribution &&
         a.function_capacity == b.function_capacity &&
         a.object_capacity == b.object_capacity &&
         a.max_gamma == b.max_gamma &&
         a.weight_clusters == b.weight_clusters && a.seed == b.seed &&
         a.points_override == b.points_override;
}

AssignmentProblem BuildProblem(const BenchConfig& config) {
  Rng rng(config.seed);
  std::vector<Point> points;
  if (config.points_override != nullptr) {
    points.assign(config.points_override->begin(),
                  config.points_override->begin() + config.num_objects);
  } else {
    points = GeneratePoints(config.distribution, config.num_objects,
                            config.dims, &rng);
  }
  FunctionSet fns =
      config.weight_clusters > 0
          ? GenerateClusteredFunctions(config.num_functions, config.dims,
                                       config.weight_clusters, 0.05, &rng)
          : GenerateFunctions(config.num_functions, config.dims, &rng);
  if (config.max_gamma > 1) AssignPriorities(&fns, config.max_gamma, &rng);
  if (config.function_capacity != 1) {
    SetFunctionCapacities(&fns, config.function_capacity);
  }
  return MakeProblem(std::move(points), std::move(fns),
                     config.object_capacity);
}

std::string CheckRunnable(const std::string& name,
                          const BenchConfig& config) {
  const MatcherRegistry& registry = MatcherRegistry::Global();
  const MatcherInfo* info = registry.Find(name);
  if (info == nullptr) {
    std::string message = "unknown matcher '" + name + "'; registered:";
    for (const std::string& n : registry.Names()) message += "\n  " + n;
    return message;
  }
  if (info->needs_disk_functions && !config.disk_resident_functions) {
    return "matcher '" + name +
           "' requires the disk-resident-F setting; set "
           "BenchConfig::disk_resident_functions";
  }
  if (info->reference) {
    return "matcher '" + name +
           "' is a reference oracle (O(P*|F|*|O|)); it is excluded from "
           "benches";
  }
  return std::string();
}

RunStats Run(const std::string& name, const AssignmentProblem& problem,
             const BenchConfig& config) {
  const std::string error = CheckRunnable(name, config);
  if (!error.empty()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    std::abort();
  }

  // One shared instrumentation context per measured run: every storage
  // entity below counts its simulated-disk traffic here.
  ExecContext ctx;
  MatcherEnv env;
  env.problem = &problem;
  env.buffer_fraction = config.buffer_fraction;
  env.ctx = &ctx;

  // Storage layout per the paper's Section 7 / 7.6 settings. Objects on
  // the paged store (standard) or in memory (disk-F); the function
  // lists on disk only in the disk-F setting.
  std::optional<PagedNodeStore> paged_store;
  std::optional<MemNodeStore> mem_store;
  std::optional<DiskFunctionStore> fstore;
  std::optional<RTree> tree;
  if (config.disk_resident_functions) {
    mem_store.emplace(problem.dims);
    tree.emplace(&*mem_store);
    BuildObjectTree(problem, &*tree);
    fstore.emplace(problem.functions, config.buffer_fraction,
                   &ctx.counters());
    env.fn_store = &*fstore;
  } else {
    paged_store.emplace(problem.dims, /*buffer_frames=*/4096,
                        &ctx.counters());
    tree.emplace(&*paged_store);
    BuildObjectTree(problem, &*tree);
    paged_store->ResetCounters();  // exclude the build phase
    paged_store->SetBufferFraction(config.buffer_fraction);
  }
  env.tree = &*tree;

  std::unique_ptr<Matcher> matcher =
      MatcherRegistry::Global().Create(name, env);
  FAIRMATCH_CHECK(matcher != nullptr);
  return matcher->Run().stats;
}

}  // namespace fairmatch::bench
